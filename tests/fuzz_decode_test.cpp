// Robustness: decoding hostile bytes must throw util::SerialError (or
// produce a value), never crash or read out of bounds. Random buffers and
// mutated valid messages are thrown at every wire codec in the system.
#include <gtest/gtest.h>

#include "ckd/ckd.h"
#include "cliques/clq.h"
#include "gcs/link.h"
#include "gcs/wire.h"
#include "secure/ka_tgdh.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "util/rng.h"
#include "util/serial.h"
#include "util/shared_bytes.h"

namespace ss {
namespace {

using util::Bytes;
using util::Reader;

Bytes random_bytes(util::Rng& rng, std::size_t max_len) {
  Bytes out(rng.below(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

/// Each decoder must either succeed or throw SerialError; anything else
/// (crash, UB) fails the test harness itself.
template <typename Fn>
void expect_contained(Fn&& decode, const Bytes& data) {
  try {
    decode(data);
  } catch (const util::SerialError&) {
    // expected containment
  } catch (const std::invalid_argument&) {
    // bignum/hex level rejection: also contained
  }
}

class FuzzDecode : public ::testing::TestWithParam<int> {};

TEST_P(FuzzDecode, GcsWireMessages) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  for (int i = 0; i < 300; ++i) {
    const Bytes data = random_bytes(rng, 200);
    expect_contained([](const Bytes& d) { Reader r(d); gcs::HeartbeatMsg::decode(r); }, data);
    expect_contained([](const Bytes& d) { Reader r(d); gcs::GatherAnnounceMsg::decode(r); }, data);
    expect_contained([](const Bytes& d) { Reader r(d); gcs::ProposalMsg::decode(r); }, data);
    expect_contained([](const Bytes& d) { Reader r(d); gcs::StateExchangeMsg::decode(r); }, data);
    expect_contained([](const Bytes& d) { Reader r(d); gcs::InstallMsg::decode(r); }, data);
    expect_contained([](const Bytes& d) { Reader r(d); gcs::DataMsg::decode(r); }, data);
    expect_contained([](const Bytes& d) { Reader r(d); gcs::OrderStampMsg::decode(r); }, data);
    expect_contained([](const Bytes& d) { Reader r(d); gcs::RetransReqMsg::decode(r); }, data);
    expect_contained([](const Bytes& d) { Reader r(d); gcs::RetransDataMsg::decode(r); }, data);
    expect_contained([](const Bytes& d) { Reader r(d); gcs::UnicastMsg::decode(r); }, data);
    expect_contained([](const Bytes& d) { Reader r(d); gcs::GroupChangeMsg::decode(r); }, data);
    expect_contained([](const Bytes& d) { gcs::unframe(d); }, data);
  }
}

TEST_P(FuzzDecode, KeyAgreementMessages) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  for (int i = 0; i < 300; ++i) {
    const Bytes data = random_bytes(rng, 200);
    expect_contained([](const Bytes& d) { cliques::ClqHandoffMsg::decode(d); }, data);
    expect_contained([](const Bytes& d) { cliques::ClqBroadcastMsg::decode(d); }, data);
    expect_contained([](const Bytes& d) { cliques::ClqMergeChainMsg::decode(d); }, data);
    expect_contained([](const Bytes& d) { cliques::ClqMergePartialMsg::decode(d); }, data);
    expect_contained([](const Bytes& d) { cliques::ClqFactorOutMsg::decode(d); }, data);
    expect_contained([](const Bytes& d) { ckd::CkdRound1Msg::decode(d); }, data);
    expect_contained([](const Bytes& d) { ckd::CkdRound2Msg::decode(d); }, data);
    expect_contained([](const Bytes& d) { ckd::CkdKeyDistMsg::decode(d); }, data);
    expect_contained([](const Bytes& d) { secure::TgdhLeafKeyMsg::decode(d); }, data);
    expect_contained([](const Bytes& d) { secure::TgdhUpdateMsg::decode(d); }, data);
  }
}

// A tiny message claiming ~4G entries must be rejected by the count clamp
// BEFORE any allocation happens — a transient multi-GB reserve() can OOM
// the process on overcommit systems even when the bad_alloc is caught.
TEST(TgdhDecodeClamp, HugeCountsRejectedWithoutAllocation) {
  for (const bool huge_leaves : {true, false}) {
    util::Writer w;
    gcs::MemberId{1, 1}.encode(w);
    w.u32(0);                                         // round
    w.u32(huge_leaves ? 0xFFFFFFFFu : 0u);            // leaf count
    if (!huge_leaves) w.u32(0xFFFFFFFFu);             // blinded count
    const Bytes data = w.take();
    EXPECT_THROW(secure::TgdhUpdateMsg::decode(data), util::SerialError);
  }
}

TEST_P(FuzzDecode, MutatedValidMessagesContained) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 3);
  // Start from a valid encoded message and flip bytes.
  gcs::DataMsg m;
  m.view = gcs::ViewId{7, 1};
  m.sender = 2;
  m.seq = 9;
  m.service = gcs::ServiceType::kAgreed;
  m.group = "some-group";
  m.origin = gcs::MemberId{2, 4};
  m.msg_type = -42;
  m.payload = util::bytes_of("payload bytes");
  const Bytes valid = m.encode();

  for (int i = 0; i < 300; ++i) {
    Bytes mutated = valid;
    const std::size_t flips = 1 + rng.below(5);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.below(mutated.size())] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    }
    // Truncations too.
    if (rng.chance(0.3)) mutated.resize(rng.below(mutated.size() + 1));
    expect_contained([](const Bytes& d) { Reader r(d); gcs::DataMsg::decode(r); }, mutated);
  }
}

TEST_P(FuzzDecode, PackedLinkFramesContained) {
  // The packed-frame decoder (gcs/link.cpp, kFramePack) must drop hostile
  // frames — truncated pack headers, zero-length inner messages, overlong
  // counts, scatter length mismatches — without crashing or corrupting the
  // receive stream.
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 65537 + 11);
  sim::Scheduler sched;
  sim::SimNetwork net(sched, 99);
  // The link acks every accepted frame through the network; register sink
  // nodes for every peer id this test impersonates.
  struct NullNode : sim::NetNode {
    void on_packet(sim::NodeId, const util::Frame&) override {}
  } sink;
  for (int n = 0; n < 420; ++n) net.add_node(&sink);
  // Count deliveries from peer 5 only: mutated frames (sent from other
  // peer ids) may legitimately parse and deliver — containment, not
  // rejection, is what is under test there.
  std::uint64_t delivered = 0;
  gcs::LinkManager lm(ss::runtime::Env{&sched, &net, 0}, 0xF00, gcs::TimingConfig{},
                      [&delivered](gcs::DaemonId from, const util::SharedBytes&) {
                        if (from == 5) ++delivered;
                      });

  // A well-formed pack frame to mutate: 3 inner messages, one zero-length.
  const auto make_pack = [](std::uint32_t count, const std::vector<Bytes>& msgs) {
    util::Writer w;
    w.u8(3);  // kFramePack
    w.u64(0xB007);
    w.u32(count);
    std::uint64_t seq = 1;
    for (const auto& m : msgs) {
      w.u64(seq++);
      w.bytes(m);
    }
    return w.take();
  };
  const std::vector<Bytes> inner = {util::bytes_of("first"), Bytes{}, util::bytes_of("third")};
  const Bytes valid = make_pack(3, inner);

  // Sanity: the unmutated pack delivers all three (zero-length included).
  lm.on_packet(5, util::Frame{util::SharedBytes(valid)});
  EXPECT_EQ(delivered, 3u);
  EXPECT_EQ(lm.frames_rejected(), 0u);

  // Overlong count: claims more inner messages than are present.
  lm.on_packet(6, util::Frame{util::SharedBytes(make_pack(200, inner))});
  // Truncated pack headers: every prefix of a valid frame.
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    Bytes t(valid.begin(), valid.begin() + static_cast<std::ptrdiff_t>(cut));
    lm.on_packet(7, util::Frame{util::SharedBytes(std::move(t))});
  }
  // Random mutations of a valid pack, against a fresh peer each time so a
  // lucky parse cannot advance the real stream state.
  for (int i = 0; i < 300; ++i) {
    Bytes mutated = valid;
    const std::size_t flips = 1 + rng.below(6);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.below(mutated.size())] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    }
    if (rng.chance(0.3)) mutated.resize(rng.below(mutated.size() + 1));
    lm.on_packet(static_cast<gcs::DaemonId>(100 + i), util::Frame{util::SharedBytes(mutated)});
  }
  // Scatter mismatch: header claims a body length the frame does not carry.
  {
    const auto bad_head = [] {
      util::Writer w;
      w.u8(0);  // kFrameData
      w.u64(0xB007);
      w.u64(1);
      w.u32(64);  // claims 64 body bytes
      return w.take_shared();
    };
    lm.on_packet(8, util::Frame{bad_head(), util::SharedBytes(util::bytes_of("short"))});
    lm.on_packet(9, util::Frame{bad_head()});  // no body at all
  }
  EXPECT_GT(lm.frames_rejected(), 0u);

  // The original peer's stream survives all of the above: next in-sequence
  // pack still delivers.
  util::Writer w;
  w.u8(3);
  w.u64(0xB007);
  w.u32(1);
  w.u64(4);
  w.bytes(util::bytes_of("fourth"));
  lm.on_packet(5, util::Frame{w.take_shared()});
  EXPECT_EQ(delivered, 4u);
}

TEST_P(FuzzDecode, SharedBytesSliceBoundsContained) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 40503 + 29);
  for (int i = 0; i < 300; ++i) {
    const util::SharedBytes s{random_bytes(rng, 64)};
    const std::size_t off = rng.below(2 * (s.size() + 2));
    const std::size_t len = rng.below(2 * (s.size() + 2));
    try {
      const util::SharedBytes sub = s.slice(off, len);
      // A successful slice must be a true in-bounds view of the block.
      ASSERT_LE(off + len, s.size());
      ASSERT_EQ(sub.size(), len);
      if (len > 0) {
        ASSERT_EQ(sub.data(), s.data() + off);
      }
    } catch (const std::out_of_range&) {
      ASSERT_GT(off + len, s.size());  // rejection only when truly out of bounds
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDecode, ::testing::Range(0, 6));

}  // namespace
}  // namespace ss
