// Robustness: decoding hostile bytes must throw util::SerialError (or
// produce a value), never crash or read out of bounds. Random buffers and
// mutated valid messages are thrown at every wire codec in the system.
#include <gtest/gtest.h>

#include "ckd/ckd.h"
#include "cliques/clq.h"
#include "gcs/wire.h"
#include "util/rng.h"
#include "util/serial.h"

namespace ss {
namespace {

using util::Bytes;
using util::Reader;

Bytes random_bytes(util::Rng& rng, std::size_t max_len) {
  Bytes out(rng.below(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

/// Each decoder must either succeed or throw SerialError; anything else
/// (crash, UB) fails the test harness itself.
template <typename Fn>
void expect_contained(Fn&& decode, const Bytes& data) {
  try {
    decode(data);
  } catch (const util::SerialError&) {
    // expected containment
  } catch (const std::invalid_argument&) {
    // bignum/hex level rejection: also contained
  }
}

class FuzzDecode : public ::testing::TestWithParam<int> {};

TEST_P(FuzzDecode, GcsWireMessages) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  for (int i = 0; i < 300; ++i) {
    const Bytes data = random_bytes(rng, 200);
    expect_contained([](const Bytes& d) { Reader r(d); gcs::HeartbeatMsg::decode(r); }, data);
    expect_contained([](const Bytes& d) { Reader r(d); gcs::GatherAnnounceMsg::decode(r); }, data);
    expect_contained([](const Bytes& d) { Reader r(d); gcs::ProposalMsg::decode(r); }, data);
    expect_contained([](const Bytes& d) { Reader r(d); gcs::StateExchangeMsg::decode(r); }, data);
    expect_contained([](const Bytes& d) { Reader r(d); gcs::InstallMsg::decode(r); }, data);
    expect_contained([](const Bytes& d) { Reader r(d); gcs::DataMsg::decode(r); }, data);
    expect_contained([](const Bytes& d) { Reader r(d); gcs::OrderStampMsg::decode(r); }, data);
    expect_contained([](const Bytes& d) { Reader r(d); gcs::RetransReqMsg::decode(r); }, data);
    expect_contained([](const Bytes& d) { Reader r(d); gcs::RetransDataMsg::decode(r); }, data);
    expect_contained([](const Bytes& d) { Reader r(d); gcs::UnicastMsg::decode(r); }, data);
    expect_contained([](const Bytes& d) { Reader r(d); gcs::GroupChangeMsg::decode(r); }, data);
    expect_contained([](const Bytes& d) { gcs::unframe(d); }, data);
  }
}

TEST_P(FuzzDecode, KeyAgreementMessages) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  for (int i = 0; i < 300; ++i) {
    const Bytes data = random_bytes(rng, 200);
    expect_contained([](const Bytes& d) { cliques::ClqHandoffMsg::decode(d); }, data);
    expect_contained([](const Bytes& d) { cliques::ClqBroadcastMsg::decode(d); }, data);
    expect_contained([](const Bytes& d) { cliques::ClqMergeChainMsg::decode(d); }, data);
    expect_contained([](const Bytes& d) { cliques::ClqMergePartialMsg::decode(d); }, data);
    expect_contained([](const Bytes& d) { cliques::ClqFactorOutMsg::decode(d); }, data);
    expect_contained([](const Bytes& d) { ckd::CkdRound1Msg::decode(d); }, data);
    expect_contained([](const Bytes& d) { ckd::CkdRound2Msg::decode(d); }, data);
    expect_contained([](const Bytes& d) { ckd::CkdKeyDistMsg::decode(d); }, data);
  }
}

TEST_P(FuzzDecode, MutatedValidMessagesContained) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 3);
  // Start from a valid encoded message and flip bytes.
  gcs::DataMsg m;
  m.view = gcs::ViewId{7, 1};
  m.sender = 2;
  m.seq = 9;
  m.service = gcs::ServiceType::kAgreed;
  m.group = "some-group";
  m.origin = gcs::MemberId{2, 4};
  m.msg_type = -42;
  m.payload = util::bytes_of("payload bytes");
  const Bytes valid = m.encode();

  for (int i = 0; i < 300; ++i) {
    Bytes mutated = valid;
    const std::size_t flips = 1 + rng.below(5);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.below(mutated.size())] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    }
    // Truncations too.
    if (rng.chance(0.3)) mutated.resize(rng.below(mutated.size() + 1));
    expect_contained([](const Bytes& d) { Reader r(d); gcs::DataMsg::decode(r); }, mutated);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDecode, ::testing::Range(0, 6));

}  // namespace
}  // namespace ss
