// Shared test harness: a simulated cluster of daemons plus recording
// clients. Used by the gcs, flush and secure-layer test suites.
//
// Every Cluster installs a check::InvariantChecker as the process-wide
// client trace for its lifetime, so all clients created against its daemons
// (RecordingClient, FlushMailbox, SecureGroupClient — in any test) have the
// EVS/VS/key-consistency protocol invariants enforced automatically. The
// checker's verdict is asserted in the Cluster destructor.
//
// Each Cluster also installs its own obs::MetricsRegistry (which carries the
// process-wide msgpath counter block), so metrics recorded by one test can
// never bleed into another's assertions.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "check/invariant_checker.h"
#include "gcs/daemon.h"
#include "gcs/mailbox.h"
#include "obs/metrics.h"
#include "sim/network.h"
#include "sim/scheduler.h"

namespace ss::testing {

/// Records everything a Mailbox delivers.
class RecordingClient {
 public:
  explicit RecordingClient(gcs::Daemon& daemon) : mbox_(daemon) {
    mbox_.on_message([this](const gcs::Message& m) { messages.push_back(m); });
    mbox_.on_view([this](const gcs::GroupView& v) { views.push_back(v); });
    mbox_.on_transitional([this](const gcs::GroupName& g) { transitionals.push_back(g); });
  }

  gcs::Mailbox& mbox() { return mbox_; }
  const gcs::MemberId& id() const { return mbox_.id(); }

  const gcs::GroupView* last_view(const gcs::GroupName& group) const {
    for (auto it = views.rbegin(); it != views.rend(); ++it) {
      if (it->group == group) return &*it;
    }
    return nullptr;
  }

  std::vector<std::string> payloads(const gcs::GroupName& group) const {
    std::vector<std::string> out;
    for (const auto& m : messages) {
      if (m.group == group) out.push_back(util::string_of(m.payload));
    }
    return out;
  }

  std::vector<gcs::Message> messages;
  std::vector<gcs::GroupView> views;
  std::vector<gcs::GroupName> transitionals;

 private:
  gcs::Mailbox mbox_;
};

/// N daemons on a simulated LAN, all started and merged into one view.
class Cluster {
 public:
  explicit Cluster(std::size_t n, std::uint64_t seed = 42,
                   gcs::TimingConfig timing = {}, sim::LinkModel link = {})
      : net(sched, seed, link), trace_scope_(checker), metrics_scope_(metrics) {
    std::vector<gcs::DaemonId> ids;
    for (std::size_t i = 0; i < n; ++i) ids.push_back(static_cast<gcs::DaemonId>(i));
    for (std::size_t i = 0; i < n; ++i) {
      // Reserve the node id on the network first; daemons register in order.
      daemons.push_back(nullptr);
    }
    for (std::size_t i = 0; i < n; ++i) {
      auto d = std::make_unique<gcs::Daemon>(ss::runtime::Env{&sched, &net, static_cast<gcs::DaemonId>(i)}, ids,
                                             timing, seed + i);
      const sim::NodeId node = net.add_node(d.get());
      (void)node;
      daemons[i] = std::move(d);
    }
    for (auto& d : daemons) d->start();
  }

  /// Fails the surrounding test if any protocol invariant was violated.
  ~Cluster() {
    checker.finalize();
    if (!checker.ok()) ADD_FAILURE() << checker.report();
  }

  /// Runs until every running daemon is operational in the same view
  /// containing exactly `expect` members (or the deadline passes).
  bool converge(std::size_t expect, sim::Time deadline_from_now = sim::kSecond) {
    const sim::Time deadline = sched.now() + deadline_from_now;
    return sched.run_until_condition([&] { return converged(expect); }, deadline);
  }

  bool converged(std::size_t expect) const {
    const gcs::Daemon* ref = nullptr;
    std::size_t running = 0;
    for (const auto& d : daemons) {
      if (!d->running()) continue;
      ++running;
      if (!d->is_operational()) return false;
      if (ref == nullptr) ref = d.get();
    }
    if (ref == nullptr) return expect == 0;
    // All *reachable-from-ref* daemons must share ref's view; daemons outside
    // it are in other components (fine for partition tests).
    if (ref->view_members().size() != expect) return false;
    for (const auto& d : daemons) {
      if (!d->running() || !d->is_operational()) continue;
      const auto& members = ref->view_members();
      if (std::find(members.begin(), members.end(), d->id()) != members.end()) {
        if (d->view() != ref->view()) return false;
      }
    }
    return running >= expect;
  }

  void run_for(sim::Time t) { sched.run_for(t); }
  bool run_until(const std::function<bool()>& pred, sim::Time timeout = sim::kSecond) {
    return sched.run_until_condition(pred, sched.now() + timeout);
  }

  sim::Scheduler sched;
  sim::SimNetwork net;
  /// Per-cluster metrics registry, installed process-wide for the cluster's
  /// lifetime (tests assert on `metrics` without cross-test bleed).
  obs::MetricsRegistry metrics;
  /// Protocol invariant checker fed by every client of this cluster.
  check::InvariantChecker checker;
  std::vector<std::unique_ptr<gcs::Daemon>> daemons;

 private:
  check::TraceScope trace_scope_;
  obs::RegistryScope metrics_scope_;
};

}  // namespace ss::testing
