// sslint self-tests: rules-file parsing, the comment/string lexer, a
// fixture corpus with one planted violation per rule (tests/sslint/fixtures),
// and the "clean tree" gate asserting the real repository produces zero
// diagnostics under the committed tools/sslint.rules.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "tools/sslint/sslint.h"

namespace ss::lint {
namespace {

using Key = std::tuple<std::string, int, std::string>;  // (file, line, rule)

std::multiset<Key> keys_of(const std::vector<Diagnostic>& diags) {
  std::multiset<Key> out;
  for (const Diagnostic& d : diags) out.insert(Key{d.file, d.line, d.rule});
  return out;
}

Config fixture_config() {
  Config cfg;
  std::string error;
  EXPECT_TRUE(parse_rules_file(std::string(SSLINT_FIXTURE_DIR) + "/rules.conf", &cfg, &error))
      << error;
  return cfg;
}

std::vector<Diagnostic> run_fixtures(bool with_compile_commands) {
  Options opts;
  opts.root = SSLINT_FIXTURE_DIR;
  if (with_compile_commands) {
    opts.compile_commands = std::string(SSLINT_FIXTURE_DIR) + "/compile_commands.json";
  }
  return run(fixture_config(), opts);
}

TEST(SslintLexer, StripsCommentsAndLiterals) {
  const std::string in =
      "int a; // std::mutex in a comment\n"
      "const char* s = \"rand()\";\n"
      "/* time(nullptr)\n   spans lines */ int b;\n"
      "char c = '\\'';\n";
  const std::string out = strip_comments_and_literals(in);
  EXPECT_EQ(out.find("mutex"), std::string::npos);
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_EQ(out.find("time"), std::string::npos);
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_NE(out.find("int b;"), std::string::npos);
  // Line structure is preserved so diagnostics keep their line numbers.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'),
            std::count(in.begin(), in.end(), '\n'));
}

TEST(SslintLexer, DigitSeparatorsDoNotOpenCharLiterals) {
  // An odd number of C++14 digit separators must not leave the lexer stuck
  // in char-literal state, blanking (and so masking) the code that follows.
  const std::string in = "const int n = 10'000; srand(n);\nint keep;\n";
  const std::string out = strip_comments_and_literals(in);
  EXPECT_NE(out.find("10'000"), std::string::npos);
  EXPECT_NE(out.find("srand"), std::string::npos);
  EXPECT_NE(out.find("int keep;"), std::string::npos);
  // A genuine char literal is still blanked.
  EXPECT_EQ(strip_comments_and_literals("char c = 'x';\n").find('x'), std::string::npos);
}

TEST(SslintLexer, HandlesRawStrings) {
  const std::string in = "auto j = R\"(std::thread inside raw)\"; int keep;\n";
  const std::string out = strip_comments_and_literals(in);
  EXPECT_EQ(out.find("thread"), std::string::npos);
  EXPECT_NE(out.find("int keep;"), std::string::npos);
}

TEST(SslintRules, ParsesTheCommittedRealRules) {
  Config cfg;
  std::string error;
  ASSERT_TRUE(parse_rules_file(std::string(SSLINT_REPO_ROOT) + "/tools/sslint.rules", &cfg,
                               &error))
      << error;
  EXPECT_FALSE(cfg.layers.empty());
  EXPECT_FALSE(cfg.bans.empty());
  // The layering table must cover every protocol layer the paper's stack
  // names; forgetting one would silently disable its checks.
  for (const char* layer : {"util", "crypto", "runtime", "gcs", "flush", "secure", "net", "netd"}) {
    EXPECT_TRUE(cfg.layers.count(layer) != 0u) << layer;
  }
}

TEST(SslintRules, RejectsDependencyCycles) {
  Config cfg;
  std::string error;
  EXPECT_FALSE(parse_rules_text("[layers]\na = b\nb = a\n", "test", &cfg, &error));
  EXPECT_NE(error.find("cycle"), std::string::npos) << error;
}

TEST(SslintRules, RejectsBadRegex) {
  Config cfg;
  std::string error;
  EXPECT_FALSE(parse_rules_text("[ban x]\npattern = (unclosed\nmessage = m\n", "test",
                                &cfg, &error));
}

TEST(SslintRules, RejectsUnknownSection) {
  Config cfg;
  std::string error;
  EXPECT_FALSE(parse_rules_text("[nope]\nkey = v\n", "test", &cfg, &error));
}

TEST(SslintFixtures, FlagsEveryPlantedViolationAtItsLine) {
  const auto got = keys_of(run_fixtures(/*with_compile_commands=*/true));
  const std::multiset<Key> want{
      {"src/crypto/bad_wipe.cpp", 5, "secret-wipe"},
      {"src/flush/bad_mutex.cpp", 2, "raw-mutex"},
      {"src/flush/bad_mutex.cpp", 4, "raw-mutex"},
      {"src/flush/bad_thread.cpp", 2, "raw-thread"},
      {"src/flush/bad_thread.cpp", 4, "raw-thread"},
      {"src/gcs/bad_layer.cpp", 3, "layer-dag"},
      {"src/gcs/bad_pool.cpp", 5, "worker-pool"},
      {"src/gcs/bad_pool.cpp", 7, "worker-pool"},
      {"src/gcs/bad_reach.cpp", 3, "layer-reach"},
      {"src/gcs/bad_socket.cpp", 4, "socket-headers"},
      {"src/gcs/bad_socket.cpp", 5, "socket-headers"},
      // The a -> b -> c -> a cycle: every edge that can reach sim is
      // flagged. A DFS memo caching partial sets across the back edge
      // would miss cyc_c.h, cyc_victim.cpp and cyc_b.h's cycle edge.
      {"src/gcs/cyc_a.h", 3, "layer-reach"},
      {"src/gcs/cyc_b.h", 3, "layer-reach"},
      {"src/gcs/cyc_b.h", 4, "layer-reach"},
      {"src/gcs/cyc_c.h", 3, "layer-reach"},
      {"src/gcs/cyc_victim.cpp", 3, "layer-reach"},
      {"src/obs/bad_clock.cpp", 4, "wall-clock"},
      {"src/obs/bad_rng.cpp", 4, "predictable-rng"},
      // The secure-layer corpus mirrors ka_tgdh's failure modes: simulator
      // reach through the runtime seam, ambient RNG feeding leaf secrets,
      // and memset-wiping a path secret.
      {"src/secure/bad_tgdh_reach.cpp", 4, "layer-reach"},
      {"src/secure/bad_tgdh_rng.cpp", 5, "predictable-rng"},
      {"src/secure/bad_tgdh_wipe.cpp", 6, "secret-wipe"},
      {"src/util/bad_parent.cpp", 3, "parent-include"},
      {"src/util/bad_resolve.cpp", 3, "include-unresolved"},
      {"src/util/no_pragma.h", 0, "pragma-once"},
      {"src/util/orphan.cpp", 0, "orphan-source"},
  };
  EXPECT_EQ(got, want) << format(run_fixtures(true));
}

TEST(SslintFixtures, CleanFilesProduceNoDiagnostics) {
  const auto diags = run_fixtures(/*with_compile_commands=*/true);
  // Files exercising allow-lists, edge exceptions and lexer immunity must
  // stay silent: a false positive there would poison the real tree.
  for (const Diagnostic& d : diags) {
    EXPECT_NE(d.file, "src/util/mutex.h") << d.rule;
    EXPECT_NE(d.file, "src/util/comment_immunity.h") << d.rule;
    EXPECT_NE(d.file, "src/util/ok.h") << d.rule;
    EXPECT_NE(d.file, "src/runtime/sim_adapter.h") << d.rule;
    EXPECT_NE(d.file, "src/util/built.cpp") << d.rule;
    EXPECT_NE(d.file, "src/net/ok_socket.cpp") << d.rule;
  }
}

TEST(SslintFixtures, OrphanRuleIsSkippedWithoutCompileCommands) {
  for (const Diagnostic& d : run_fixtures(/*with_compile_commands=*/false)) {
    EXPECT_NE(d.rule, "orphan-source") << d.file;
  }
}

TEST(SslintFixtures, DiagnosticsAreSortedAndFormatted) {
  const auto diags = run_fixtures(true);
  ASSERT_FALSE(diags.empty());
  for (std::size_t i = 1; i < diags.size(); ++i) {
    EXPECT_LE(std::tie(diags[i - 1].file, diags[i - 1].line),
              std::tie(diags[i].file, diags[i].line));
  }
  const std::string text = format(diags);
  EXPECT_NE(text.find("src/gcs/bad_layer.cpp:3: [layer-dag]"), std::string::npos) << text;
}

// The acceptance gate: the real tree, under the real rules, is clean. This
// is the compile-time complement of the invariant checker — any new
// layering leak, raw mutex, ambient RNG or unwiped secret fails the suite,
// not just the (optional) check.sh lint stage.
TEST(SslintCleanTree, RepositoryIsCleanUnderCommittedRules) {
  Config cfg;
  std::string error;
  ASSERT_TRUE(parse_rules_file(std::string(SSLINT_REPO_ROOT) + "/tools/sslint.rules", &cfg,
                               &error))
      << error;
  Options opts;
  opts.root = SSLINT_REPO_ROOT;  // orphan rule skipped: build dir name varies
  const auto diags = run(cfg, opts);
  EXPECT_TRUE(diags.empty()) << format(diags);
}

}  // namespace
}  // namespace ss::lint
