// Protocol tests for CKD (centralized key distribution, paper Appendix /
// Table 5), including the serial-exponentiation counts of Tables 2-4.
#include "ckd/ckd.h"

#include <gtest/gtest.h>

#include <memory>

#include "crypto/drbg.h"
#include "crypto/exp_counter.h"

namespace ss::ckd {
namespace {

using crypto::Bignum;
using crypto::DhGroup;
using crypto::exp_tally;
using crypto::ExpPurpose;
using crypto::ExpTally;
using crypto::HmacDrbg;
using crypto::reset_exp_tally;

MemberId mid(std::uint32_t i) { return MemberId{i, 1}; }

class CkdGroup {
 public:
  explicit CkdGroup(const DhGroup& dh = DhGroup::tiny64())
      : dh_(dh), dir_(dh), rnd_(99, "ckd-test") {}

  CkdContext& ctx(const MemberId& m) { return *ctxs_.at(m); }
  const std::vector<MemberId>& members() const { return members_; }
  CkdContext& controller() { return ctx(members_.front()); }

  void found(const MemberId& m) {
    dir_.ensure(m, rnd_);
    ctxs_.emplace(m, std::make_unique<CkdContext>(dh_, dir_, m, rnd_));
    members_ = {m};
  }

  /// Full join; returns (controller tally, joiner tally).
  std::pair<ExpTally, ExpTally> join(const MemberId& joiner) {
    dir_.ensure(joiner, rnd_);
    auto jc = std::make_unique<CkdContext>(dh_, dir_, joiner, rnd_);
    std::vector<MemberId> final_members = members_;
    final_members.push_back(joiner);

    reset_exp_tally();
    auto round1s = controller().pairwise_begin(final_members);
    ExpTally controller_tally = exp_tally();

    ExpTally joiner_tally{};
    for (const auto& [target, r1] : round1s) {
      reset_exp_tally();
      const CkdRound2Msg r2 = jc->pairwise_respond(r1);
      joiner_tally += exp_tally();
      reset_exp_tally();
      controller().pairwise_complete(r2);
      controller_tally += exp_tally();
    }
    reset_exp_tally();
    const CkdKeyDistMsg dist = controller().distribute(final_members);
    controller_tally += exp_tally();

    ctxs_.emplace(joiner, std::move(jc));
    for (const auto& m : final_members) {
      if (m == members_.front()) continue;
      if (m == joiner) {
        reset_exp_tally();
        ctx(m).process_key_dist(dist, final_members);
        joiner_tally += exp_tally();
      } else {
        ctx(m).process_key_dist(dist, final_members);
      }
    }
    members_ = final_members;
    reset_exp_tally();
    return {controller_tally, joiner_tally};
  }

  /// Leave of a non-controller member; returns controller tally.
  ExpTally leave(const MemberId& leaver) {
    std::vector<MemberId> remaining;
    for (const auto& m : members_) {
      if (m != leaver) remaining.push_back(m);
    }
    ctxs_.erase(leaver);
    controller().forget_pairwise(leaver);
    reset_exp_tally();
    const CkdKeyDistMsg dist = ctx(remaining.front()).distribute(remaining);
    const ExpTally tally = exp_tally();
    for (const auto& m : remaining) ctx(m).process_key_dist(dist, remaining);
    members_ = remaining;
    reset_exp_tally();
    return tally;
  }

  /// Leave of the controller: the successor re-establishes everything.
  ExpTally controller_leave() {
    const MemberId old = members_.front();
    std::vector<MemberId> remaining(members_.begin() + 1, members_.end());
    ctxs_.erase(old);
    CkdContext& nc = ctx(remaining.front());
    for (const auto& m : remaining) ctx(m).forget_pairwise(old);

    reset_exp_tally();
    auto round1s = nc.pairwise_begin(remaining);
    ExpTally tally = exp_tally();
    for (const auto& [target, r1] : round1s) {
      const CkdRound2Msg r2 = ctx(target).pairwise_respond(r1);
      reset_exp_tally();
      nc.pairwise_complete(r2);
      tally += exp_tally();
    }
    reset_exp_tally();
    const CkdKeyDistMsg dist = nc.distribute(remaining);
    tally += exp_tally();
    for (const auto& m : remaining) ctx(m).process_key_dist(dist, remaining);
    members_ = remaining;
    reset_exp_tally();
    return tally;
  }

  void assert_key_agreement() {
    const Bignum& ref = ctx(members_.front()).raw_key();
    ASSERT_FALSE(ref.is_zero());
    for (const auto& m : members_) {
      ASSERT_EQ(ctx(m).raw_key(), ref) << "member " << m.to_string() << " disagrees";
    }
  }

  const DhGroup& dh_;
  cliques::KeyDirectory dir_;
  HmacDrbg rnd_;
  std::map<MemberId, std::unique_ptr<CkdContext>> ctxs_;
  std::vector<MemberId> members_;
};

TEST(CkdProtocol, TwoPartyJoin) {
  CkdGroup g;
  g.found(mid(1));
  g.join(mid(2));
  g.assert_key_agreement();
}

TEST(CkdProtocol, SequentialJoins) {
  CkdGroup g;
  g.found(mid(1));
  for (std::uint32_t i = 2; i <= 6; ++i) {
    g.join(mid(i));
    g.assert_key_agreement();
  }
  // CKD controller is the oldest member.
  EXPECT_TRUE(g.ctx(mid(1)).is_controller());
  EXPECT_FALSE(g.ctx(mid(4)).is_controller());
}

TEST(CkdProtocol, KeyChangesPerEvent) {
  CkdGroup g;
  g.found(mid(1));
  g.join(mid(2));
  const Bignum k1 = g.ctx(mid(1)).raw_key();
  g.join(mid(3));
  const Bignum k2 = g.ctx(mid(1)).raw_key();
  EXPECT_NE(k1, k2);
  g.leave(mid(2));
  EXPECT_NE(g.ctx(mid(1)).raw_key(), k2);
  g.assert_key_agreement();
}

TEST(CkdProtocol, ControllerLeaveRecovers) {
  CkdGroup g;
  g.found(mid(1));
  for (std::uint32_t i = 2; i <= 5; ++i) g.join(mid(i));
  g.controller_leave();
  g.assert_key_agreement();
  EXPECT_TRUE(g.ctx(mid(2)).is_controller());
  // Survives follow-on operations.
  g.join(mid(9));
  g.assert_key_agreement();
}

TEST(CkdProtocol, SessionKeyDerivation) {
  CkdGroup g;
  g.found(mid(1));
  g.join(mid(2));
  EXPECT_EQ(g.ctx(mid(1)).session_key(16), g.ctx(mid(2)).session_key(16));
}

TEST(CkdProtocol, RejectsInvalidElements) {
  CkdGroup g;
  g.found(mid(1));
  g.join(mid(2));
  CkdRound1Msg bogus;
  bogus.controller = mid(1);
  bogus.value = Bignum(1);
  EXPECT_THROW(g.ctx(mid(2)).pairwise_respond(bogus), std::runtime_error);
}

TEST(CkdProtocol, DistributionWithoutPairwiseRejected) {
  CkdGroup g;
  g.found(mid(1));
  std::vector<MemberId> fake = {mid(1), mid(7)};
  EXPECT_THROW(g.ctx(mid(1)).distribute(fake), std::logic_error);
}

TEST(CkdProtocol, MessageCodecsRoundTrip) {
  CkdKeyDistMsg m;
  m.controller = mid(1);
  m.encrypted_keys.emplace_back(mid(2), Bignum::from_hex("deadbeef"));
  m.encrypted_keys.emplace_back(mid(3), Bignum::from_hex("cafe"));
  const CkdKeyDistMsg d = CkdKeyDistMsg::decode(m.encode());
  EXPECT_EQ(d.controller, m.controller);
  ASSERT_EQ(d.encrypted_keys.size(), 2u);
  EXPECT_EQ(d.encrypted_keys[1].second, Bignum::from_hex("cafe"));
}

// --- Exponentiation counts (Tables 2-4) -------------------------------------

class CkdCounts : public ::testing::TestWithParam<int> {};

TEST_P(CkdCounts, JoinMatchesTable2) {
  const std::uint64_t n = static_cast<std::uint64_t>(GetParam());
  CkdGroup g;
  g.found(mid(1));
  std::pair<ExpTally, ExpTally> tallies;
  for (std::uint64_t i = 2; i <= n; ++i) tallies = g.join(mid(static_cast<std::uint32_t>(i)));
  const auto& [controller, joiner] = tallies;

  // Controller: long-term key with new member (1), pairwise key with new
  // member (1), new session key (1), encryption of session key (n-1).
  // Total n+2.
  EXPECT_EQ(controller.count(ExpPurpose::kLongTermKey), 1u);
  EXPECT_EQ(controller.count(ExpPurpose::kPairwiseKey), 1u);
  EXPECT_EQ(controller.count(ExpPurpose::kSessionKey), 1u);
  EXPECT_EQ(controller.count(ExpPurpose::kEncryptSessionKey), n - 1);
  EXPECT_EQ(controller.total(), n + 2);

  // New member: long-term (1), pairwise (1), encryption of pairwise secret
  // (1), decryption of session key (1). Total 4 — independent of n.
  EXPECT_EQ(joiner.count(ExpPurpose::kLongTermKey), 1u);
  EXPECT_EQ(joiner.count(ExpPurpose::kPairwiseKey), 1u);
  EXPECT_EQ(joiner.count(ExpPurpose::kEncryptSessionKey), 1u);
  EXPECT_EQ(joiner.count(ExpPurpose::kDecryptSessionKey), 1u);
  EXPECT_EQ(joiner.total(), 4u);
}

TEST_P(CkdCounts, LeaveMatchesTable3) {
  const std::uint64_t n = static_cast<std::uint64_t>(GetParam());
  CkdGroup g;
  g.found(mid(1));
  for (std::uint64_t i = 2; i <= n; ++i) g.join(mid(static_cast<std::uint32_t>(i)));
  const ExpTally tally = g.leave(mid(3));
  // New session key (1) + encryption (n-2). Total n-1.
  EXPECT_EQ(tally.count(ExpPurpose::kSessionKey), 1u);
  EXPECT_EQ(tally.count(ExpPurpose::kEncryptSessionKey), n - 2);
  EXPECT_EQ(tally.total(), n - 1);
}

TEST_P(CkdCounts, ControllerLeaveMatchesTable3) {
  const std::uint64_t n = static_cast<std::uint64_t>(GetParam());
  CkdGroup g;
  g.found(mid(1));
  for (std::uint64_t i = 2; i <= n; ++i) g.join(mid(static_cast<std::uint32_t>(i)));
  const ExpTally tally = g.controller_leave();
  // Long-term (n-2), pairwise (n-2, plus the successor's one-time alpha^{r1}),
  // session (1), encryption (n-2). Paper total: 3n-5 (+1 one-time r1 setup).
  EXPECT_EQ(tally.count(ExpPurpose::kLongTermKey), n - 2);
  EXPECT_EQ(tally.count(ExpPurpose::kPairwiseKey), n - 2 + 1);
  EXPECT_EQ(tally.count(ExpPurpose::kSessionKey), 1u);
  EXPECT_EQ(tally.count(ExpPurpose::kEncryptSessionKey), n - 2);
  EXPECT_EQ(tally.total(), 3 * n - 5 + 1);
  g.assert_key_agreement();
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, CkdCounts, ::testing::Values(3, 4, 5, 8, 12));

}  // namespace
}  // namespace ss::ckd
