// Additional secure-layer coverage: automatic key refresh, stats counters,
// epoch windows, larger groups, and cross-module interactions.
#include <gtest/gtest.h>

#include "secure/secure_client.h"
#include "tests/cluster_fixture.h"

namespace ss::secure {
namespace {

using crypto::DhGroup;
using gcs::GroupName;
using testing::Cluster;
using util::bytes_of;
using util::string_of;

class SecureExtra : public ::testing::Test {
 protected:
  SecureExtra() : c(3), dir(DhGroup::tiny64()) { EXPECT_TRUE(c.converge(3)); }

  SecureGroupConfig cfg(const std::string& ka = "cliques") {
    SecureGroupConfig out;
    out.ka_module = ka;
    out.dh = &DhGroup::tiny64();
    return out;
  }

  Cluster c;
  cliques::KeyDirectory dir;
};

TEST_F(SecureExtra, AutoRefreshRotatesKeys) {
  SecureGroupClient a(*c.daemons[0], dir, 1);
  SecureGroupClient b(*c.daemons[1], dir, 2);
  SecureGroupConfig config = cfg();
  config.auto_refresh_interval = 200 * sim::kMillisecond;  // only a refreshes
  a.join("g", config);
  b.join("g", cfg());
  ASSERT_TRUE(c.run_until([&] { return a.has_key("g") && b.has_key("g"); }, 5 * sim::kSecond));
  const util::Bytes k0 = a.key_material("g", 16);
  c.run_for(1500 * sim::kMillisecond);  // several refresh periods
  EXPECT_GE(a.group_stats("g").auto_refreshes, 3u);
  EXPECT_NE(a.key_material("g", 16), k0);
  // Both still agree after rotation.
  EXPECT_EQ(a.key_material("g", 16), b.key_material("g", 16));
}

TEST_F(SecureExtra, AutoRefreshStopsOnLeave) {
  SecureGroupClient a(*c.daemons[0], dir, 1);
  SecureGroupConfig config = cfg();
  config.auto_refresh_interval = 100 * sim::kMillisecond;
  a.join("g", config);
  ASSERT_TRUE(c.run_until([&] { return a.has_key("g"); }, sim::kSecond));
  a.leave("g");
  ASSERT_TRUE(c.run_until([&] { return a.current_view("g") == nullptr; }, sim::kSecond));
  // No pending timers firing on a departed group (would throw/log).
  c.run_for(sim::kSecond);
  EXPECT_FALSE(a.has_key("g"));
}

TEST_F(SecureExtra, StatsCountersTrackDataPath) {
  SecureGroupClient a(*c.daemons[0], dir, 1);
  SecureGroupClient b(*c.daemons[1], dir, 2);
  a.join("g", cfg());
  b.join("g", cfg());
  ASSERT_TRUE(c.run_until([&] { return a.has_key("g") && b.has_key("g"); }, 5 * sim::kSecond));
  int got = 0;
  b.on_message([&](const SecureMessage&) { ++got; });
  for (int i = 0; i < 5; ++i) a.send("g", bytes_of("m"));
  ASSERT_TRUE(c.run_until([&] { return got == 5; }, 5 * sim::kSecond));
  EXPECT_EQ(a.group_stats("g").sealed, 5u);
  EXPECT_EQ(b.group_stats("g").opened, 5u);
  EXPECT_GE(a.group_stats("g").rekeys, 1u);
  EXPECT_EQ(b.group_stats("g").dropped_unauthentic, 0u);
}

TEST_F(SecureExtra, LargerGroupAcrossDaemons) {
  std::vector<std::unique_ptr<SecureGroupClient>> members;
  for (int i = 0; i < 9; ++i) {
    members.push_back(std::make_unique<SecureGroupClient>(
        *c.daemons[static_cast<std::size_t>(i) % 3], dir, 100 + static_cast<std::uint64_t>(i)));
    members.back()->join("big", cfg());
  }
  ASSERT_TRUE(c.run_until(
      [&] {
        for (auto& m : members) {
          const auto* v = m->current_view("big");
          if (v == nullptr || v->members.size() != 9 || !m->has_key("big")) return false;
        }
        return true;
      },
      30 * sim::kSecond));
  const util::Bytes ref = members[0]->key_material("big", 16);
  for (auto& m : members) EXPECT_EQ(m->key_material("big", 16), ref);
}

TEST_F(SecureExtra, TwoGroupsIndependentEpochs) {
  SecureGroupClient a(*c.daemons[0], dir, 1);
  SecureGroupClient b(*c.daemons[1], dir, 2);
  a.join("g1", cfg());
  b.join("g1", cfg());
  a.join("g2", cfg("ckd"));
  b.join("g2", cfg("ckd"));
  ASSERT_TRUE(c.run_until(
      [&] {
        return a.has_key("g1") && b.has_key("g1") && a.has_key("g2") && b.has_key("g2");
      },
      10 * sim::kSecond));
  const util::Bytes g2_key = a.key_material("g2", 16);
  // Refresh g1 only; g2's key must be untouched.
  b.refresh_key("g1");
  c.run_for(500 * sim::kMillisecond);
  EXPECT_EQ(a.key_material("g2", 16), g2_key);
}

TEST_F(SecureExtra, GhostFreeMergeAfterLeaveInPartition) {
  // Regression for the ghost-member bug: a member leaves while partitioned;
  // after the heal its entry must NOT be resurrected by the table merge.
  SecureGroupClient a(*c.daemons[0], dir, 1);
  SecureGroupClient b(*c.daemons[1], dir, 2);
  SecureGroupClient d(*c.daemons[2], dir, 3);
  a.join("g", cfg());
  b.join("g", cfg());
  d.join("g", cfg());
  ASSERT_TRUE(c.run_until(
      [&] { return a.has_key("g") && b.has_key("g") && d.has_key("g"); }, 10 * sim::kSecond));
  c.net.partition({{0}, {1, 2}});
  ASSERT_TRUE(c.run_until(
      [&] {
        const auto* v = b.current_view("g");
        return v != nullptr && v->members.size() == 2 && b.has_key("g");
      },
      10 * sim::kSecond));
  // b leaves inside the majority partition.
  b.leave("g");
  ASSERT_TRUE(c.run_until(
      [&] {
        const auto* v = d.current_view("g");
        return v != nullptr && v->members.size() == 1 && d.has_key("g");
      },
      10 * sim::kSecond));
  c.net.heal();
  // Merge must converge on exactly {a, d}: no ghost b blocking the flush.
  ASSERT_TRUE(c.run_until(
      [&] {
        const auto* va = a.current_view("g");
        const auto* vd = d.current_view("g");
        return va != nullptr && va->members.size() == 2 && a.has_key("g") && vd != nullptr &&
               vd->members.size() == 2 && d.has_key("g");
      },
      20 * sim::kSecond));
  EXPECT_FALSE(a.current_view("g")->contains(b.id()));
  EXPECT_EQ(a.key_material("g", 16), d.key_material("g", 16));
}

TEST_F(SecureExtra, RejoinAfterLeaveGetsFreshState) {
  SecureGroupClient a(*c.daemons[0], dir, 1);
  SecureGroupClient b(*c.daemons[1], dir, 2);
  a.join("g", cfg());
  b.join("g", cfg());
  ASSERT_TRUE(c.run_until([&] { return a.has_key("g") && b.has_key("g"); }, 5 * sim::kSecond));
  b.leave("g");
  ASSERT_TRUE(c.run_until([&] { return b.current_view("g") == nullptr; }, 5 * sim::kSecond));
  b.join("g", cfg());
  ASSERT_TRUE(c.run_until(
      [&] {
        const auto* v = b.current_view("g");
        return v != nullptr && v->members.size() == 2 && b.has_key("g") && a.has_key("g");
      },
      10 * sim::kSecond));
  EXPECT_EQ(a.key_material("g", 16), b.key_material("g", 16));
}

TEST_F(SecureExtra, UnknownGroupOperationsAreSafe) {
  SecureGroupClient a(*c.daemons[0], dir, 1);
  EXPECT_THROW(a.send("nope", bytes_of("x")), std::logic_error);
  EXPECT_NO_THROW(a.refresh_key("nope"));
  EXPECT_FALSE(a.has_key("nope"));
  EXPECT_EQ(a.key_epoch("nope"), 0u);
  EXPECT_EQ(a.current_view("nope"), nullptr);
  EXPECT_THROW(a.key_material("nope", 16), std::logic_error);
}

}  // namespace
}  // namespace ss::secure
