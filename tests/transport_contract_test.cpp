// Shared runtime::Transport contract suite, run over both wall-clock
// backends: the RealtimeEnv in-process queue transport and the UDP
// transport on loopback. Whatever backend a daemon is wired to, the
// semantics the protocol stack observes must be identical: sender
// resolution, frame integrity, fail-stop crash()/recover(), silent drops
// to unbound destinations, and the no-body-copy send path.
//
// (The discrete-event sim transport is covered by its own deterministic
// suites; this file is about the two backends real threads run on.)
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/endpoint.h"
#include "net/udp_transport.h"
#include "runtime/realtime_env.h"
#include "util/msgpath.h"
#include "util/mutex.h"

namespace {

using namespace ss;

constexpr std::size_t kNodes = 3;

/// RealtimeEnv's own queue transport.
class QueueBackend {
 public:
  QueueBackend() {
    for (std::size_t i = 0; i < kNodes; ++i) env_.add_node();
    env_.start();
  }
  ~QueueBackend() { env_.stop(); }
  runtime::Transport& transport() { return env_; }
  bool wait_until(const std::function<bool()>& pred) {
    return env_.wait_until(pred, 5 * runtime::kSecond);
  }

 private:
  runtime::RealtimeEnv env_;
};

/// UdpTransport on 127.0.0.1 with ephemeral ports.
class UdpBackend {
 public:
  UdpBackend() {
    net::AddressMap map;
    for (runtime::NodeId id = 0; id < kNodes; ++id) {
      map.set(id, net::Endpoint{0x7f000001, 0});
    }
    udp_ = std::make_unique<net::UdpTransport>(env_, std::move(map));
    for (runtime::NodeId id = 0; id < kNodes; ++id) udp_->open_local(id);
    env_.start();
    udp_->start();
  }
  ~UdpBackend() {
    udp_->stop();
    env_.stop();
  }
  runtime::Transport& transport() { return *udp_; }
  bool wait_until(const std::function<bool()>& pred) {
    return env_.wait_until(pred, 5 * runtime::kSecond);
  }

 private:
  runtime::RealtimeEnv env_;
  std::unique_ptr<net::UdpTransport> udp_;
};

class CountingSink final : public runtime::PacketSink {
 public:
  void on_packet(runtime::NodeId from, const util::Frame& frame) override {
    util::MutexLock lk(mu_);
    util::Bytes flat(frame.head.begin(), frame.head.end());
    flat.insert(flat.end(), frame.body.begin(), frame.body.end());
    from_.push_back(from);
    payloads_.push_back(std::move(flat));
  }
  std::size_t count() const {
    util::MutexLock lk(mu_);
    return from_.size();
  }
  runtime::NodeId from(std::size_t i) const {
    util::MutexLock lk(mu_);
    return from_.at(i);
  }
  util::Bytes payload(std::size_t i) const {
    util::MutexLock lk(mu_);
    return payloads_.at(i);
  }

 private:
  mutable util::Mutex mu_;
  std::vector<runtime::NodeId> from_;
  std::vector<util::Bytes> payloads_;
};

template <typename Backend>
class TransportContract : public ::testing::Test {
 protected:
  void SetUp() override {
    for (runtime::NodeId id = 0; id < kNodes; ++id) {
      backend_.transport().bind(id, &sinks_[id]);
    }
  }
  void TearDown() override {
    for (runtime::NodeId id = 0; id < kNodes; ++id) {
      backend_.transport().bind(id, nullptr);
    }
  }

  static util::Frame frame_of(const std::string& head, const util::SharedBytes& body = {}) {
    return util::Frame{util::SharedBytes(util::bytes_of(head)), body};
  }

  Backend backend_;
  CountingSink sinks_[kNodes];
};

using Backends = ::testing::Types<QueueBackend, UdpBackend>;
TYPED_TEST_SUITE(TransportContract, Backends);

TYPED_TEST(TransportContract, DeliversWithSenderResolutionAndIntactBytes) {
  this->backend_.transport().send(0, 1, this->frame_of("one"));
  this->backend_.transport().send(2, 1, this->frame_of("two"));
  ASSERT_TRUE(this->backend_.wait_until([&] { return this->sinks_[1].count() >= 2; }));
  // Per-(sender) bytes must be intact; arrival order across senders is not
  // part of the contract.
  std::vector<std::pair<runtime::NodeId, util::Bytes>> got;
  for (std::size_t i = 0; i < 2; ++i) {
    got.emplace_back(this->sinks_[1].from(i), this->sinks_[1].payload(i));
  }
  EXPECT_NE(std::find(got.begin(), got.end(),
                      std::make_pair(runtime::NodeId{0}, util::bytes_of("one"))),
            got.end());
  EXPECT_NE(std::find(got.begin(), got.end(),
                      std::make_pair(runtime::NodeId{2}, util::bytes_of("two"))),
            got.end());
}

TYPED_TEST(TransportContract, SendingDoesNotMutateTheFrame) {
  const util::SharedBytes body(util::bytes_of("shared-body"));
  util::Frame frame = this->frame_of("hd", body);
  this->backend_.transport().send(0, 1, frame);
  this->backend_.transport().send(0, 2, frame);
  ASSERT_TRUE(this->backend_.wait_until(
      [&] { return this->sinks_[1].count() >= 1 && this->sinks_[2].count() >= 1; }));
  EXPECT_EQ(frame.head, util::bytes_of("hd"));
  EXPECT_EQ(frame.body, util::bytes_of("shared-body"));
  EXPECT_EQ(this->sinks_[1].payload(0), this->sinks_[2].payload(0));
}

TYPED_TEST(TransportContract, FanOutNeverCopiesTheBody) {
  const util::SharedBytes body(util::Bytes(2048, 0x5a));
  const std::uint64_t before = util::msgpath().payload_copies.load();
  for (int i = 0; i < 4; ++i) {
    util::Frame frame = this->frame_of("h", body);
    this->backend_.transport().send(0, 1, frame);
    this->backend_.transport().send(0, 2, frame);
  }
  ASSERT_TRUE(this->backend_.wait_until(
      [&] { return this->sinks_[1].count() >= 4 && this->sinks_[2].count() >= 4; }));
  EXPECT_EQ(util::msgpath().payload_copies.load(), before)
      << "transport backend copied a frame body on the send path";
}

TYPED_TEST(TransportContract, CrashIsFailStopBothWaysAndRecoverable) {
  auto& t = this->backend_.transport();
  t.crash(2);
  t.send(0, 2, this->frame_of("to-down"));
  t.send(2, 0, this->frame_of("from-down"));
  t.send(0, 1, this->frame_of("alive"));
  ASSERT_TRUE(this->backend_.wait_until([&] { return this->sinks_[1].count() >= 1; }));
  EXPECT_EQ(this->sinks_[2].count(), 0u);
  EXPECT_EQ(this->sinks_[0].count(), 0u);

  t.recover(2);
  t.send(0, 2, this->frame_of("back"));
  ASSERT_TRUE(this->backend_.wait_until([&] { return this->sinks_[2].count() >= 1; }));
  EXPECT_EQ(this->sinks_[2].payload(0), util::bytes_of("back"));
}

TYPED_TEST(TransportContract, UnboundDestinationDropsSilently) {
  auto& t = this->backend_.transport();
  t.bind(2, nullptr);
  t.send(0, 2, this->frame_of("void"));  // must not crash or error
  t.send(0, 1, this->frame_of("still-works"));
  ASSERT_TRUE(this->backend_.wait_until([&] { return this->sinks_[1].count() >= 1; }));
  EXPECT_EQ(this->sinks_[2].count(), 0u);
  // Re-bind: deliveries resume (fresh sink sees only new traffic).
  t.bind(2, &this->sinks_[2]);
  t.send(0, 2, this->frame_of("rebound"));
  ASSERT_TRUE(this->backend_.wait_until([&] { return this->sinks_[2].count() >= 1; }));
  EXPECT_EQ(this->sinks_[2].payload(0), util::bytes_of("rebound"));
}

}  // namespace
