// Fixture simulator layer; target of layering violations.
#pragma once
namespace fix {
int sched_now();
}
