// Exercises the [ban socket-headers] allow-list: src/net owns the sockets,
// so these includes must stay silent.
#include <poll.h>
#include <sys/socket.h>
int net_ok() { return 0; }
