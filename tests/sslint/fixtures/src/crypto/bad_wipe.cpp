// Violation [secret-wipe] at line 5.
#include "util/ok.h"
#include <cstring>
void wipe_key(unsigned char* key, unsigned long n) {
  memset(key, 0, n);
}
