// Violation [predictable-rng] at line 4.
#include <cstdlib>
int jitter() {
  return rand() % 7;
}
