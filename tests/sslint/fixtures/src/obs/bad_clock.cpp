// Violation [wall-clock] at line 4.
#include <ctime>
long stamp() {
  return time(nullptr);
}
