// Clean: the excepted runtime -> sim edge (mirrors runtime/sim_env.h).
#pragma once
#include "runtime/clock.h"
#include "sim/sched.h"
namespace fix {
int adapted_now();
struct WorkerPool;  // clean: the worker-pool ban allow-lists src/runtime
}
