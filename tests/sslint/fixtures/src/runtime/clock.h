// Fixture runtime seam.
#pragma once
namespace fix {
int clock_now();
}
