// Clean header: referenced by other fixtures; produces no diagnostics.
#pragma once
namespace fix {
int ok();
}
