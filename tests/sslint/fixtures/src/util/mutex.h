// Allow-listed: the one place std::mutex may appear (mirrors util/mutex.h).
#pragma once
#include <mutex>
namespace fix {
using RawMutex = std::mutex;
}
