// Violation [orphan-source]: missing from compile_commands.json.
int orphan_fn() { return 1; }
