// Violation [pragma-once]: header without #pragma once.
namespace fix {
int no_pragma();
}
