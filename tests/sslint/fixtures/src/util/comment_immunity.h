// Lexer test: banned tokens appear only in comments and string literals,
// so this file must produce zero diagnostics.
// A comment saying std::mutex and rand() and memset( changes nothing.
#pragma once
namespace fix {
/* block comment: std::thread, time(nullptr), #include <mutex> */
inline const char* docstring() {
  return "call rand() and memset(buf, 0, n) under std::mutex";
}
inline char raw() {
  return 'r';  // '\'' quoting: std::thread
}
}
