// Violation [parent-include] at line 3.
#include "util/ok.h"
#include "../outside.h"
int parent_user() { return 0; }
