// Clean: listed in compile_commands.json.
int built_fn() { return 2; }
