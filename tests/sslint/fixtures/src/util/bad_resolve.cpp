// Violation [include-unresolved] at line 3.
#include "util/ok.h"
#include "util/does_not_exist.h"
int resolve_user() { return 0; }
