// Include cycle a -> b -> c -> a; sim is reachable only through b.
#pragma once
#include "gcs/cyc_b.h"
