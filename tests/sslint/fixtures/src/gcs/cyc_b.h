// Middle of the cycle: the only file with a real path into sim.
#pragma once
#include "gcs/cyc_c.h"
#include "runtime/sim_adapter.h"
