// Violation [socket-headers] at lines 4 and 5: protocol layers must not
// talk to platform sockets directly; the network lives behind src/net's
// runtime::Transport implementation.
#include <sys/socket.h>
#include <netinet/in.h>
int socketed() { return 0; }
