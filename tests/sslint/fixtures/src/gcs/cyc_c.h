// Back edge of the cycle: a DFS memo would cache a partial set here.
#pragma once
#include "gcs/cyc_a.h"
