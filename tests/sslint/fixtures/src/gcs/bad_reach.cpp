// Violation [layer-reach] at line 3: runtime/sim_adapter.h is a legal
// include for gcs, but it transitively drags in the sim layer.
#include "runtime/sim_adapter.h"
int reached() { return 0; }
