// Violation [layer-dag] at line 3: gcs may not include sim directly.
#include "util/ok.h"
#include "sim/sched.h"
int layered() { return 0; }
