// Violation [worker-pool] at lines 5 and 7: protocol layers must not build
// a WorkerPool of their own (that mention is immune: comments are stripped);
// they offload through the runtime::Compute seam instead.
namespace fix {
struct WorkerPool;
// A second hit on another line checks per-line reporting, not just per-file.
void rekey_all(WorkerPool* pool);
}  // namespace fix
