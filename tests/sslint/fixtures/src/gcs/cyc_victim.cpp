// Violation [layer-reach] at line 3: reaches sim only through the
// a -> b -> c -> a include cycle, which demands fixpoint reachability.
#include "gcs/cyc_a.h"
int cyc_victim() { return 0; }
