// Violation [predictable-rng] at line 5: leaf secrets feed the group key;
// they must come from the DRBG, not an ambient engine.
#include <random>
unsigned long tgdh_leaf_secret() {
  std::mt19937 gen(42);
  return gen();
}
