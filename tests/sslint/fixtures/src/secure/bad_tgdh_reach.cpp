// Violation [layer-reach] at line 4: the tree KA module may use the
// runtime seam, but never the simulator behind it.
#include "util/ok.h"
#include "runtime/sim_adapter.h"
int tgdh_reached() { return 0; }
