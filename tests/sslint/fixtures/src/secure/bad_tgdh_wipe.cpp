// Violation [secret-wipe] at line 6: dropping a tree node's path secret
// with memset is dead-store-eliminated; use util::secure_wipe.
#include "util/ok.h"
#include <cstring>
void tgdh_drop_path_secret(unsigned char* secret, unsigned long n) {
  memset(secret, 0, n);
}
