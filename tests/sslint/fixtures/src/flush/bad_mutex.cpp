// Violation [raw-mutex] at lines 2 and 4.
#include <mutex>
namespace fix {
std::mutex raw_mu;
}
