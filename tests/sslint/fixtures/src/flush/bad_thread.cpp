// Violation [raw-thread] at line 4.
#include <thread>
void spawn() {
  std::thread t([] {});
  t.join();
}
