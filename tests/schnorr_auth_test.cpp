// Tests for Schnorr signatures and per-member sender authentication in the
// secure layer (paper Section 2, third security goal: authenticate a member
// by its secret contribution to the group key).
#include <gtest/gtest.h>

#include "crypto/schnorr.h"
#include "secure/secure_client.h"
#include "tests/cluster_fixture.h"

namespace ss {
namespace {

using crypto::Bignum;
using crypto::DhGroup;
using crypto::HmacDrbg;
using crypto::schnorr_sign;
using crypto::schnorr_verify;
using crypto::SchnorrSignature;
using util::bytes_of;

TEST(Schnorr, SignVerifyRoundTrip) {
  const DhGroup& g = DhGroup::ss256();
  HmacDrbg rnd(1, "schnorr");
  const Bignum x = g.random_share(rnd);
  const Bignum y = g.exp_g(x);
  const auto msg = bytes_of("message to authenticate");
  const SchnorrSignature sig = schnorr_sign(g, x, y, msg, rnd);
  EXPECT_TRUE(schnorr_verify(g, y, msg, sig));
}

TEST(Schnorr, WrongMessageRejected) {
  const DhGroup& g = DhGroup::ss256();
  HmacDrbg rnd(2, "schnorr");
  const Bignum x = g.random_share(rnd);
  const Bignum y = g.exp_g(x);
  const SchnorrSignature sig = schnorr_sign(g, x, y, bytes_of("original"), rnd);
  EXPECT_FALSE(schnorr_verify(g, y, bytes_of("tampered"), sig));
}

TEST(Schnorr, WrongKeyRejected) {
  const DhGroup& g = DhGroup::ss256();
  HmacDrbg rnd(3, "schnorr");
  const Bignum x = g.random_share(rnd);
  const Bignum y = g.exp_g(x);
  const Bignum y2 = g.exp_g(g.random_share(rnd));
  const auto msg = bytes_of("m");
  const SchnorrSignature sig = schnorr_sign(g, x, y, msg, rnd);
  EXPECT_FALSE(schnorr_verify(g, y2, msg, sig));
}

TEST(Schnorr, MalleatedSignatureRejected) {
  const DhGroup& g = DhGroup::ss256();
  HmacDrbg rnd(4, "schnorr");
  const Bignum x = g.random_share(rnd);
  const Bignum y = g.exp_g(x);
  const auto msg = bytes_of("m");
  SchnorrSignature sig = schnorr_sign(g, x, y, msg, rnd);
  sig.response = (sig.response + Bignum(1)) % g.q();
  EXPECT_FALSE(schnorr_verify(g, y, msg, sig));
  SchnorrSignature sig2 = schnorr_sign(g, x, y, msg, rnd);
  sig2.challenge = (sig2.challenge + Bignum(1)) % g.q();
  EXPECT_FALSE(schnorr_verify(g, y, msg, sig2));
}

TEST(Schnorr, InvalidPublicKeyRejected) {
  const DhGroup& g = DhGroup::ss256();
  HmacDrbg rnd(5, "schnorr");
  const Bignum x = g.random_share(rnd);
  const Bignum y = g.exp_g(x);
  const auto msg = bytes_of("m");
  const SchnorrSignature sig = schnorr_sign(g, x, y, msg, rnd);
  EXPECT_FALSE(schnorr_verify(g, Bignum(1), msg, sig));          // order-1 element
  EXPECT_FALSE(schnorr_verify(g, g.p() - Bignum(1), msg, sig));  // order-2 element
}

TEST(Schnorr, CodecRoundTrip) {
  const DhGroup& g = DhGroup::tiny64();
  HmacDrbg rnd(6, "schnorr");
  const Bignum x = g.random_share(rnd);
  const Bignum y = g.exp_g(x);
  const SchnorrSignature sig = schnorr_sign(g, x, y, bytes_of("codec"), rnd);
  const SchnorrSignature d = SchnorrSignature::decode(sig.encode());
  EXPECT_EQ(d.challenge, sig.challenge);
  EXPECT_EQ(d.response, sig.response);
}

// --- secure-layer sender authentication --------------------------------------

namespace sauth {

using gcs::GroupName;
using secure::SecureGroupClient;
using secure::SecureGroupConfig;
using secure::SecureMessage;
using testing::Cluster;

struct AuthFixture : public ::testing::Test {
  AuthFixture() : c(3), dir(DhGroup::tiny64()) { EXPECT_TRUE(c.converge(3)); }

  SecureGroupConfig cfg(const std::string& ka = "cliques") {
    SecureGroupConfig out;
    out.ka_module = ka;
    out.dh = &DhGroup::tiny64();
    out.authenticate_senders = true;
    return out;
  }

  Cluster c;
  cliques::KeyDirectory dir;
};

TEST_F(AuthFixture, CliquesMessagesArriveAuthenticated) {
  SecureGroupClient a(*c.daemons[0], dir, 1);
  SecureGroupClient b(*c.daemons[1], dir, 2);
  std::vector<SecureMessage> got;
  b.on_message([&](const SecureMessage& m) { got.push_back(m); });
  a.join("g", cfg());
  b.join("g", cfg());
  ASSERT_TRUE(c.run_until([&] { return a.has_key("g") && b.has_key("g"); }, 5 * sim::kSecond));
  a.send("g", bytes_of("signed by my share"));
  ASSERT_TRUE(c.run_until([&] { return !got.empty(); }, 5 * sim::kSecond));
  EXPECT_TRUE(got[0].authenticated);
  EXPECT_EQ(got[0].sender, a.id());
  EXPECT_EQ(util::string_of(got[0].plaintext), "signed by my share");
}

TEST_F(AuthFixture, AuthenticationSurvivesRekey) {
  SecureGroupClient a(*c.daemons[0], dir, 1);
  SecureGroupClient b(*c.daemons[1], dir, 2);
  std::vector<SecureMessage> got;
  b.on_message([&](const SecureMessage& m) { got.push_back(m); });
  a.join("g", cfg());
  b.join("g", cfg());
  ASSERT_TRUE(c.run_until([&] { return a.has_key("g") && b.has_key("g"); }, 5 * sim::kSecond));
  a.send("g", bytes_of("m1"));
  b.refresh_key("g");
  c.run_for(300 * sim::kMillisecond);
  a.send("g", bytes_of("m2"));
  ASSERT_TRUE(c.run_until([&] { return got.size() == 2; }, 5 * sim::kSecond));
  EXPECT_TRUE(got[0].authenticated);
  EXPECT_TRUE(got[1].authenticated);
}

TEST_F(AuthFixture, AuthenticationSurvivesMembershipChange) {
  SecureGroupClient a(*c.daemons[0], dir, 1);
  SecureGroupClient b(*c.daemons[1], dir, 2);
  SecureGroupClient d(*c.daemons[2], dir, 3);
  std::vector<SecureMessage> got;
  b.on_message([&](const SecureMessage& m) { got.push_back(m); });
  a.join("g", cfg());
  b.join("g", cfg());
  d.join("g", cfg());
  ASSERT_TRUE(c.run_until(
      [&] { return a.has_key("g") && b.has_key("g") && d.has_key("g"); }, 10 * sim::kSecond));
  d.leave("g");
  ASSERT_TRUE(c.run_until(
      [&] {
        const auto* v = a.current_view("g");
        return v != nullptr && v->members.size() == 2 && a.has_key("g") && b.has_key("g");
      },
      10 * sim::kSecond));
  a.send("g", bytes_of("post-leave"));
  ASSERT_TRUE(c.run_until([&] { return !got.empty(); }, 5 * sim::kSecond));
  EXPECT_TRUE(got.back().authenticated);
}

TEST_F(AuthFixture, CkdCannotAuthenticateIndividuals) {
  // The paper's §2.2 point: centralized key management does not allow
  // per-member authentication — messages arrive unauthenticated.
  SecureGroupClient a(*c.daemons[0], dir, 1);
  SecureGroupClient b(*c.daemons[1], dir, 2);
  std::vector<SecureMessage> got;
  b.on_message([&](const SecureMessage& m) { got.push_back(m); });
  a.join("g", cfg("ckd"));
  b.join("g", cfg("ckd"));
  ASSERT_TRUE(c.run_until([&] { return a.has_key("g") && b.has_key("g"); }, 5 * sim::kSecond));
  a.send("g", bytes_of("unsigned"));
  ASSERT_TRUE(c.run_until([&] { return !got.empty(); }, 5 * sim::kSecond));
  EXPECT_FALSE(got[0].authenticated);
  EXPECT_EQ(util::string_of(got[0].plaintext), "unsigned");
}

TEST_F(AuthFixture, UnsignedPeersInteroperate) {
  // A member with authentication off can talk to one with it on; its
  // messages simply arrive unauthenticated.
  SecureGroupClient a(*c.daemons[0], dir, 1);
  SecureGroupClient b(*c.daemons[1], dir, 2);
  std::vector<SecureMessage> at_b;
  b.on_message([&](const SecureMessage& m) { at_b.push_back(m); });
  SecureGroupConfig unsigned_cfg = cfg();
  unsigned_cfg.authenticate_senders = false;
  a.join("g", unsigned_cfg);
  b.join("g", cfg());
  ASSERT_TRUE(c.run_until([&] { return a.has_key("g") && b.has_key("g"); }, 5 * sim::kSecond));
  a.send("g", bytes_of("no sig"));
  ASSERT_TRUE(c.run_until([&] { return !at_b.empty(); }, 5 * sim::kSecond));
  EXPECT_FALSE(at_b[0].authenticated);
}

TEST_F(AuthFixture, ReservedTypesRejectedFromApp) {
  SecureGroupClient a(*c.daemons[0], dir, 1);
  a.join("g", cfg());
  ASSERT_TRUE(c.run_until([&] { return a.has_key("g"); }, 5 * sim::kSecond));
  EXPECT_THROW(a.send("g", bytes_of("x"), secure::kShareCommitType), std::invalid_argument);
}

}  // namespace sauth

}  // namespace
}  // namespace ss
