// Batched rekeying acceptance: a join+leave storm landing inside one
// rekey_batch_window must cost the surviving members exactly ONE rekey
// round (one epoch bump, the folded views counted as coalesced), and the
// batch must converge to one bit-identical group key. The same scenario
// runs over the discrete-event cluster (SimEnv) and over live lane threads
// (RealtimeEnv) — the batching semantics may not depend on the backend —
// and over every registered key-agreement module.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "gcs/daemon.h"
#include "runtime/realtime_env.h"
#include "secure/secure_client.h"
#include "tests/cluster_fixture.h"

namespace ss::secure {
namespace {

using crypto::DhGroup;
using gcs::GroupName;
using testing::Cluster;

constexpr const char* kGroup = "storm";

class BatchedStorm : public ::testing::TestWithParam<const char*> {
 protected:
  SecureGroupConfig config(runtime::Time window) const {
    SecureGroupConfig cfg;
    cfg.ka_module = GetParam();
    cfg.dh = &DhGroup::tiny64();
    cfg.rekey_batch_window = window;
    return cfg;
  }
};

// ---------------------------------------------------------------------------
// SimEnv arm
// ---------------------------------------------------------------------------

TEST_P(BatchedStorm, StormCostsOneRekeyRoundSim) {
  Cluster c(3);
  ASSERT_TRUE(c.converge(3));
  cliques::KeyDirectory dir(DhGroup::tiny64());
  const SecureGroupConfig cfg = config(500 * runtime::kMillisecond);

  auto make = [&](std::size_t daemon, std::uint64_t seed) {
    return std::make_unique<SecureGroupClient>(*c.daemons[daemon], dir, seed);
  };
  auto a = make(0, 1);
  auto b = make(1, 2);
  a->join(kGroup, cfg);
  b->join(kGroup, cfg);
  ASSERT_TRUE(c.run_until([&] { return a->has_key(kGroup) && b->has_key(kGroup); },
                          10 * sim::kSecond));

  const SecureGroupStats before = a->group_stats(kGroup);
  const std::uint64_t epoch_before = a->key_epoch(kGroup);

  // The storm: two joins and one leave, all inside one batch window but
  // spaced out enough that each lands as its own GCS view — the point is
  // the SECURE layer's coalescing, not the daemon folding them for us.
  auto c1 = make(2, 3);
  auto c2 = make(2, 4);
  c1->join(kGroup, cfg);
  c.run_for(60 * runtime::kMillisecond);
  c2->join(kGroup, cfg);
  c.run_for(60 * runtime::kMillisecond);
  b->leave(kGroup);

  ASSERT_TRUE(c.run_until(
      [&] {
        for (SecureGroupClient* m : {a.get(), c1.get(), c2.get()}) {
          const gcs::GroupView* v = m->current_view(kGroup);
          if (v == nullptr || v->members.size() != 3 || !m->has_key(kGroup)) return false;
        }
        return a->key_epoch(kGroup) > epoch_before;
      },
      20 * sim::kSecond));
  // Let the batch window drain fully before counting rounds.
  c.run_for(runtime::kSecond);

  const SecureGroupStats after = a->group_stats(kGroup);
  EXPECT_EQ(after.rekeys - before.rekeys, 1u)
      << "a join+join+leave storm inside the window must cost one rekey round";
  EXPECT_EQ(a->key_epoch(kGroup) - epoch_before, 1u);
  EXPECT_GE(after.coalesced_views - before.coalesced_views, 1u)
      << "the folded views must be visible in the coalesced counter";

  const util::Bytes ref = a->key_material(kGroup, 32);
  EXPECT_EQ(c1->key_material(kGroup, 32), ref);
  EXPECT_EQ(c2->key_material(kGroup, 32), ref);
}

// The endpoint-diff trap: a member that leaves and REJOINS inside one batch
// window cancels out of a naive final-members-vs-handed diff, so survivors
// would never be told it joined — its module state restarted, survivors'
// did not, and key agreement diverges permanently. The batch contract
// forces such a member into BOTH `left` and `joined`; survivors must tear
// it down, re-admit it, and the whole group must converge on one key in
// one rekey round — for every module.
TEST_P(BatchedStorm, LeaveThenRejoinInsideWindowSim) {
  Cluster c(3);
  ASSERT_TRUE(c.converge(3));
  cliques::KeyDirectory dir(DhGroup::tiny64());
  const SecureGroupConfig cfg = config(800 * runtime::kMillisecond);

  auto make = [&](std::size_t daemon, std::uint64_t seed) {
    return std::make_unique<SecureGroupClient>(*c.daemons[daemon], dir, seed);
  };
  auto a = make(0, 1);
  auto b = make(1, 2);
  auto d = make(2, 3);
  a->join(kGroup, cfg);
  b->join(kGroup, cfg);
  d->join(kGroup, cfg);
  ASSERT_TRUE(c.run_until(
      [&] { return a->has_key(kGroup) && b->has_key(kGroup) && d->has_key(kGroup); },
      10 * sim::kSecond));

  const SecureGroupStats before = a->group_stats(kGroup);
  const std::uint64_t epoch_before = a->key_epoch(kGroup);

  // Same member, same id: leave and rejoin with both views landing inside
  // the surviving members' batch window.
  b->leave(kGroup);
  c.run_for(60 * runtime::kMillisecond);
  b->join(kGroup, cfg);

  ASSERT_TRUE(c.run_until(
      [&] {
        for (SecureGroupClient* m : {a.get(), b.get(), d.get()}) {
          const gcs::GroupView* v = m->current_view(kGroup);
          if (v == nullptr || v->members.size() != 3 || !m->has_key(kGroup)) return false;
        }
        return a->key_epoch(kGroup) > epoch_before;
      },
      20 * sim::kSecond))
      << "leave-then-rejoin inside the window never re-keyed the rejoiner";
  // Let the batch window drain fully before counting rounds.
  c.run_for(2 * runtime::kSecond);

  const SecureGroupStats after = a->group_stats(kGroup);
  EXPECT_EQ(after.rekeys - before.rekeys, 1u)
      << "a leave+rejoin folded into one batch must cost one rekey round";
  EXPECT_EQ(a->key_epoch(kGroup) - epoch_before, 1u);
  EXPECT_GE(after.coalesced_views - before.coalesced_views, 1u)
      << "the rejoin view must have folded into the leave's pending batch";

  const util::Bytes ref = a->key_material(kGroup, 32);
  EXPECT_EQ(b->key_material(kGroup, 32), ref)
      << "the rejoined member must share the new group key";
  EXPECT_EQ(d->key_material(kGroup, 32), ref);
}

// With NO batch window, a cascade of views during an in-flight agreement
// exercises the generation guard instead: each superseding view bumps the
// KA generation, stale deferred compute results are dropped on arrival,
// and the round restarted from the newest view still converges — for every
// module, joins and leaves interleaved.
TEST_P(BatchedStorm, CascadeDuringAgreementDropsStaleComputeSim) {
  Cluster c(3);
  ASSERT_TRUE(c.converge(3));
  cliques::KeyDirectory dir(DhGroup::tiny64());
  const SecureGroupConfig cfg = config(/*window=*/0);

  auto make = [&](std::size_t daemon, std::uint64_t seed) {
    return std::make_unique<SecureGroupClient>(*c.daemons[daemon], dir, seed);
  };
  auto a = make(0, 1);
  a->join(kGroup, cfg);
  ASSERT_TRUE(c.run_until([&] { return a->has_key(kGroup); }, 5 * sim::kSecond));

  // Fire the cascade with no settling in between: every view lands while
  // the previous agreement is still in flight.
  auto b = make(1, 2);
  auto d = make(2, 3);
  auto e = make(2, 4);
  b->join(kGroup, cfg);
  d->join(kGroup, cfg);
  e->join(kGroup, cfg);
  b->leave(kGroup);

  ASSERT_TRUE(c.run_until(
      [&] {
        for (SecureGroupClient* m : {a.get(), d.get(), e.get()}) {
          const gcs::GroupView* v = m->current_view(kGroup);
          if (v == nullptr || v->members.size() != 3 || !m->has_key(kGroup)) return false;
        }
        return true;
      },
      30 * sim::kSecond))
      << "cascade with superseded agreements never converged";
  c.run_for(runtime::kSecond);

  const util::Bytes ref = a->key_material(kGroup, 32);
  EXPECT_EQ(d->key_material(kGroup, 32), ref);
  EXPECT_EQ(e->key_material(kGroup, 32), ref);
  // Unbatched: the surviving member paid one rekey per installed view.
  EXPECT_GE(a->group_stats(kGroup).rekeys, 2u);
}

// ---------------------------------------------------------------------------
// RealtimeEnv arm
// ---------------------------------------------------------------------------

/// Joins the lane threads on any test exit before dependents die.
class StopEnvGuard {
 public:
  explicit StopEnvGuard(runtime::RealtimeEnv& env) : env_(env) {}
  ~StopEnvGuard() { env_.stop(); }

 private:
  runtime::RealtimeEnv& env_;
};

bool poll_until(const std::function<bool()>& pred,
                std::chrono::milliseconds budget = std::chrono::milliseconds(20'000)) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

TEST_P(BatchedStorm, StormCostsOneRekeyRoundRealtime) {
  runtime::RealtimeEnv::Options opts;
  opts.lanes = 2;
  runtime::RealtimeEnv env(opts);
  constexpr std::size_t kDaemons = 3;
  std::vector<gcs::DaemonId> ids;
  for (std::size_t i = 0; i < kDaemons; ++i) ids.push_back(env.add_node());
  env.start();

  gcs::TimingConfig timing;
  timing.heartbeat_interval = 25 * runtime::kMillisecond;
  timing.fd_check_interval = 25 * runtime::kMillisecond;
  timing.fail_timeout = 2 * runtime::kSecond;
  timing.link_rto = 10 * runtime::kMillisecond;
  timing.gather_stable = 20 * runtime::kMillisecond;
  timing.gather_timeout = runtime::kSecond;
  timing.recovery_timeout = 2 * runtime::kSecond;

  cliques::KeyDirectory dir(DhGroup::tiny64());
  // A wide window: the whole scripted storm lands inside it comfortably
  // even on a loaded machine.
  const SecureGroupConfig cfg = config(2 * runtime::kSecond);
  std::vector<std::unique_ptr<gcs::Daemon>> daemons;
  std::unique_ptr<SecureGroupClient> a;
  std::unique_ptr<SecureGroupClient> b;
  std::unique_ptr<SecureGroupClient> c1;
  std::unique_ptr<SecureGroupClient> c2;
  StopEnvGuard stop_guard(env);

  for (gcs::DaemonId id : ids) {
    daemons.push_back(std::make_unique<gcs::Daemon>(env.env(id), ids, timing, /*seed=*/77));
    env.bind(id, daemons.back().get());
  }
  for (std::size_t i = 0; i < kDaemons; ++i) {
    env.run_on_lane(env.lane_of(ids[i]), [&] { daemons[i]->start(); });
  }
  ASSERT_TRUE(poll_until([&] {
    for (std::size_t i = 0; i < kDaemons; ++i) {
      bool ok = false;
      env.run_on_lane(env.lane_of(ids[i]), [&] {
        ok = daemons[i]->is_operational() && daemons[i]->view_members().size() == kDaemons;
      });
      if (!ok) return false;
    }
    return true;
  })) << "daemons did not converge";

  auto on_lane = [&](std::size_t i, const std::function<void()>& fn) {
    env.run_on_lane(env.lane_of(ids[i]), fn);
  };
  on_lane(0, [&] {
    a = std::make_unique<SecureGroupClient>(*daemons[0], dir, 1);
    a->join(kGroup, cfg);
  });
  on_lane(1, [&] {
    b = std::make_unique<SecureGroupClient>(*daemons[1], dir, 2);
    b->join(kGroup, cfg);
  });
  ASSERT_TRUE(poll_until([&] {
    bool ak = false;
    bool bk = false;
    on_lane(0, [&] { ak = a->has_key(kGroup); });
    on_lane(1, [&] { bk = b->has_key(kGroup); });
    return ak && bk;
  })) << "initial pair never keyed";

  SecureGroupStats before;
  std::uint64_t epoch_before = 0;
  on_lane(0, [&] {
    before = a->group_stats(kGroup);
    epoch_before = a->key_epoch(kGroup);
  });

  // The storm: spaced just enough that the GCS delivers each change as its
  // own view (back-to-back changes the daemon folds itself leave nothing
  // for the secure layer to coalesce), yet all well inside the 2 s window.
  on_lane(2, [&] {
    c1 = std::make_unique<SecureGroupClient>(*daemons[2], dir, 3);
    c1->join(kGroup, cfg);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  on_lane(2, [&] {
    c2 = std::make_unique<SecureGroupClient>(*daemons[2], dir, 4);
    c2->join(kGroup, cfg);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  on_lane(1, [&] { b->leave(kGroup); });

  auto keys = [&]() -> std::vector<util::Bytes> {
    std::vector<util::Bytes> out(3);
    on_lane(0, [&] {
      try {
        if (a->has_key(kGroup)) out[0] = a->key_material(kGroup, 32);
      } catch (const std::logic_error&) {
      }
    });
    on_lane(2, [&] {
      try {
        if (c1->has_key(kGroup)) out[1] = c1->key_material(kGroup, 32);
        if (c2->has_key(kGroup)) out[2] = c2->key_material(kGroup, 32);
      } catch (const std::logic_error&) {
      }
    });
    return out;
  };
  ASSERT_TRUE(poll_until(
      [&] {
        bool epoch_moved = false;
        on_lane(0, [&] { epoch_moved = a->key_epoch(kGroup) > epoch_before; });
        if (!epoch_moved) return false;
        const std::vector<util::Bytes> k = keys();
        return !k[0].empty() && k[0] == k[1] && k[0] == k[2];
      },
      std::chrono::milliseconds(30'000)))
      << "storm batch never converged on one key";

  SecureGroupStats after;
  std::uint64_t epoch_after = 0;
  on_lane(0, [&] {
    after = a->group_stats(kGroup);
    epoch_after = a->key_epoch(kGroup);
  });
  // The exact same acceptance as the sim arm: one round, one epoch bump,
  // coalescing visible.
  EXPECT_EQ(after.rekeys - before.rekeys, 1u)
      << "a join+join+leave storm inside the window must cost one rekey round";
  EXPECT_EQ(epoch_after - epoch_before, 1u);
  EXPECT_GE(after.coalesced_views - before.coalesced_views, 1u);

  for (std::size_t i : {std::size_t{0}, std::size_t{1}, std::size_t{2}}) {
    on_lane(i, [&] {
      if (i == 0) a.reset();
      if (i == 1) b.reset();
      if (i == 2) {
        c1.reset();
        c2.reset();
      }
    });
  }
  for (std::size_t i = 0; i < kDaemons; ++i) {
    on_lane(i, [&] { daemons[i]->stop(); });
  }
  for (gcs::DaemonId id : ids) env.bind(id, nullptr);
}

INSTANTIATE_TEST_SUITE_P(Modules, BatchedStorm,
                         ::testing::Values("cliques", "ckd", "tgdh"));

}  // namespace
}  // namespace ss::secure
