#include <gtest/gtest.h>

#include "util/bytes.h"
#include "util/rng.h"
#include "util/serial.h"

namespace ss::util {
namespace {

TEST(BytesTest, HexRoundTrip) {
  Bytes b = {0x00, 0x01, 0xAB, 0xFF};
  EXPECT_EQ(to_hex(b), "0001abff");
  EXPECT_EQ(from_hex("0001abff"), b);
  EXPECT_EQ(from_hex("0001ABFF"), b);  // case-insensitive input
  EXPECT_EQ(to_hex(Bytes{}), "");
  EXPECT_EQ(from_hex(""), Bytes{});
}

TEST(BytesTest, FromHexRejectsBadInput) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);   // odd length
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);    // bad digit
}

TEST(BytesTest, CtEqual) {
  EXPECT_TRUE(ct_equal(from_hex("deadbeef"), from_hex("deadbeef")));
  EXPECT_FALSE(ct_equal(from_hex("deadbeef"), from_hex("deadbeee")));
  EXPECT_FALSE(ct_equal(from_hex("dead"), from_hex("deadbeef")));
  EXPECT_TRUE(ct_equal(Bytes{}, Bytes{}));
}

TEST(BytesTest, SecureWipeClears) {
  Bytes b = from_hex("deadbeef");
  secure_wipe(b);
  EXPECT_TRUE(b.empty());
}

TEST(BytesTest, StringConversion) {
  EXPECT_EQ(string_of(bytes_of("hello")), "hello");
  EXPECT_EQ(bytes_of("").size(), 0u);
}

TEST(SerialTest, PrimitiveRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.str("hello");
  w.bytes(from_hex("cafe"));

  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.bytes(), from_hex("cafe"));
  EXPECT_TRUE(r.done());
  EXPECT_NO_THROW(r.expect_done());
}

TEST(SerialTest, BigEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  EXPECT_EQ(w.data(), (Bytes{0x01, 0x02, 0x03, 0x04}));
}

TEST(SerialTest, TruncatedReadThrows) {
  Writer w;
  w.u32(7);
  Bytes data = w.take();
  data.pop_back();
  Reader r(data);
  EXPECT_THROW(r.u32(), SerialError);
}

TEST(SerialTest, CorruptLengthPrefixThrows) {
  Writer w;
  w.u32(1000000);  // claims a million bytes follow
  Reader r(w.data());
  EXPECT_THROW(r.bytes(), SerialError);
}

TEST(SerialTest, TrailingGarbageDetected) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r(w.data());
  r.u8();
  EXPECT_THROW(r.expect_done(), SerialError);
}

TEST(SerialTest, RestConsumesEverything) {
  Writer w;
  w.u8(9);
  w.raw(from_hex("aabbcc"));
  Reader r(w.data());
  r.u8();
  EXPECT_EQ(r.rest(), from_hex("aabbcc"));
  EXPECT_TRUE(r.done());
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, BelowRespectsBound) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) ASSERT_LT(r.below(17), 17u);
}

TEST(RngTest, BetweenInclusive) {
  Rng r(8);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = r.between(3, 5);
    ASSERT_GE(v, 3u);
    ASSERT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ChanceExtremes) {
  Rng r(9);
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_TRUE(r.chance(1.0));
}

TEST(RngTest, UniformInUnitInterval) {
  Rng r(10);
  for (int i = 0; i < 1000; ++i) {
    double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngTest, ForkDiverges) {
  Rng a(11);
  Rng b = a.fork();
  EXPECT_NE(a.next(), b.next());
}

}  // namespace
}  // namespace ss::util
