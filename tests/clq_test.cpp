// Protocol tests for the Cliques (CLQ) group key agreement: key agreement
// across join/leave/merge/refresh, controller-failure handling, security
// properties (old members locked out, new members can't read back), and —
// central to the reproduction — exact serial-exponentiation counts against
// the paper's Tables 2-4.
#include "cliques/clq.h"

#include <gtest/gtest.h>

#include <memory>

#include "crypto/drbg.h"
#include "crypto/exp_counter.h"

namespace ss::cliques {
namespace {

using crypto::Bignum;
using crypto::DhGroup;
using crypto::exp_tally;
using crypto::ExpPurpose;
using crypto::ExpTally;
using crypto::HmacDrbg;
using crypto::reset_exp_tally;

MemberId mid(std::uint32_t i) { return MemberId{i, 1}; }

/// In-memory group of contexts with message plumbing. Accumulates per-role
/// tallies for the count assertions.
class ClqGroup {
 public:
  explicit ClqGroup(const DhGroup& dh = DhGroup::tiny64())
      : dh_(dh), dir_(dh), rnd_(77, "clq-test") {}

  ClqContext& ctx(const MemberId& m) { return *ctxs_.at(m); }
  const std::vector<MemberId>& members() const { return members_; }

  /// Founds the group with one member.
  void found(const MemberId& m) {
    // Long-term keys must exist in the directory before peers look them up.
    dir_.ensure(m, rnd_);
    ctxs_.emplace(m, std::make_unique<ClqContext>(dh_, dir_, m, rnd_));
    members_ = {m};
  }

  /// Runs a full JOIN; returns (controller tally, joiner tally).
  std::pair<ExpTally, ExpTally> join(const MemberId& joiner) {
    dir_.ensure(joiner, rnd_);
    auto joiner_ctx = std::make_unique<ClqContext>(dh_, dir_, joiner, rnd_);
    ClqContext& controller = ctx(members_.back());

    reset_exp_tally();
    const ClqHandoffMsg handoff = controller.join_handoff(joiner);
    const ExpTally controller_tally = exp_tally();

    std::vector<MemberId> final_members = members_;
    final_members.push_back(joiner);

    reset_exp_tally();
    const ClqBroadcastMsg bc = joiner_ctx->join_finalize(handoff, final_members);
    const ExpTally joiner_tally = exp_tally();

    ctxs_.emplace(joiner, std::move(joiner_ctx));
    for (const auto& m : members_) ctx(m).process_broadcast(bc, final_members);
    members_ = final_members;
    reset_exp_tally();
    return {controller_tally, joiner_tally};
  }

  /// Runs a LEAVE driven by the current controller; returns its tally.
  ExpTally leave(const std::vector<MemberId>& leavers) {
    std::vector<MemberId> remaining;
    for (const auto& m : members_) {
      bool leaving = std::find(leavers.begin(), leavers.end(), m) != leavers.end();
      if (leaving) {
        ctxs_.erase(m);
      } else {
        remaining.push_back(m);
      }
    }
    ClqContext& controller = ctx(remaining.back());
    reset_exp_tally();
    const ClqBroadcastMsg bc = controller.leave(leavers);
    const ExpTally tally = exp_tally();
    for (const auto& m : remaining) ctx(m).process_broadcast(bc, remaining);
    members_ = remaining;
    reset_exp_tally();
    return tally;
  }

  /// Runs a full MERGE of `new_members` (fresh singletons).
  void merge(const std::vector<MemberId>& new_members) {
    for (const auto& m : new_members) {
      dir_.ensure(m, rnd_);
      ctxs_.emplace(m, std::make_unique<ClqContext>(dh_, dir_, m, rnd_));
    }
    std::vector<MemberId> final_members = members_;
    for (const auto& m : new_members) final_members.push_back(m);

    ClqContext& controller = ctx(members_.back());
    ClqMergeChainMsg chain = controller.merge_begin(new_members);
    std::optional<ClqMergePartialMsg> partial;
    while (!partial) {
      auto [next, done] = ctx(chain.pending.front()).merge_chain(chain, final_members);
      if (done) {
        partial = done;
      } else {
        chain = *next;
      }
    }
    ClqContext& new_controller = ctx(partial->new_controller);
    std::optional<ClqBroadcastMsg> bc;
    for (const auto& m : final_members) {
      if (m == partial->new_controller) continue;
      const ClqFactorOutMsg fo = ctx(m).merge_factor_out(*partial, final_members);
      bc = new_controller.merge_collect(fo);
    }
    ASSERT_TRUE(bc.has_value());
    for (const auto& m : final_members) ctx(m).process_broadcast(*bc, final_members);
    members_ = final_members;
    reset_exp_tally();
  }

  /// All members hold the same non-trivial key.
  void assert_key_agreement() {
    ASSERT_FALSE(members_.empty());
    const Bignum& ref = ctx(members_.front()).raw_key();
    ASSERT_FALSE(ref.is_zero());
    for (const auto& m : members_) {
      ASSERT_EQ(ctx(m).raw_key(), ref) << "member " << m.to_string() << " disagrees";
      ASSERT_EQ(ctx(m).members(), members_);
    }
  }

  const DhGroup& dh_;
  KeyDirectory dir_;
  HmacDrbg rnd_;
  std::map<MemberId, std::unique_ptr<ClqContext>> ctxs_;
  std::vector<MemberId> members_;
};

TEST(ClqProtocol, TwoPartyJoinAgreesOnKey) {
  ClqGroup g;
  g.found(mid(1));
  g.join(mid(2));
  g.assert_key_agreement();
}

TEST(ClqProtocol, SequentialJoinsUpToEight) {
  ClqGroup g;
  g.found(mid(1));
  for (std::uint32_t i = 2; i <= 8; ++i) {
    g.join(mid(i));
    g.assert_key_agreement();
  }
  // Controller is the newest member.
  EXPECT_EQ(g.ctx(mid(3)).controller(), mid(8));
}

TEST(ClqProtocol, KeyChangesOnEveryJoin) {
  ClqGroup g;
  g.found(mid(1));
  g.join(mid(2));
  const Bignum k2 = g.ctx(mid(1)).raw_key();
  g.join(mid(3));
  const Bignum k3 = g.ctx(mid(1)).raw_key();
  EXPECT_NE(k2, k3);
}

TEST(ClqProtocol, LeaveProducesNewAgreedKey) {
  ClqGroup g;
  g.found(mid(1));
  for (std::uint32_t i = 2; i <= 5; ++i) g.join(mid(i));
  const Bignum before = g.ctx(mid(1)).raw_key();
  g.leave({mid(3)});
  g.assert_key_agreement();
  EXPECT_NE(g.ctx(mid(1)).raw_key(), before);
}

TEST(ClqProtocol, ControllerLeaveHandledByPredecessor) {
  // The controller (newest member) vanishes; the previous joiner takes over
  // using its stored broadcast set with the inherited blinding chain.
  ClqGroup g;
  g.found(mid(1));
  for (std::uint32_t i = 2; i <= 5; ++i) g.join(mid(i));
  g.leave({mid(5)});  // mid(4) becomes controller
  g.assert_key_agreement();
  EXPECT_EQ(g.ctx(mid(1)).controller(), mid(4));
  // And the new controller can keep operating (another leave).
  g.leave({mid(2)});
  g.assert_key_agreement();
}

TEST(ClqProtocol, CascadedControllerLeaves) {
  ClqGroup g;
  g.found(mid(1));
  for (std::uint32_t i = 2; i <= 6; ++i) g.join(mid(i));
  g.leave({mid(6)});
  g.leave({mid(5)});
  g.leave({mid(4)});
  g.assert_key_agreement();
  EXPECT_EQ(g.members().size(), 3u);
}

TEST(ClqProtocol, MultiLeave) {
  ClqGroup g;
  g.found(mid(1));
  for (std::uint32_t i = 2; i <= 6; ++i) g.join(mid(i));
  g.leave({mid(2), mid(3), mid(6)});
  g.assert_key_agreement();
  EXPECT_EQ(g.members().size(), 3u);
}

TEST(ClqProtocol, RefreshChangesKeyOnly) {
  ClqGroup g;
  g.found(mid(1));
  g.join(mid(2));
  g.join(mid(3));
  const Bignum before = g.ctx(mid(1)).raw_key();
  const auto members_before = g.members();
  // The controller (newest member) refreshes unilaterally.
  const ClqBroadcastMsg bc = g.ctx(mid(3)).refresh();
  for (const auto& m : g.members()) g.ctx(m).process_broadcast(bc, g.members());
  g.assert_key_agreement();
  EXPECT_NE(g.ctx(mid(2)).raw_key(), before);
  EXPECT_EQ(g.members(), members_before);
}

TEST(ClqProtocol, NonControllerRefreshRejected) {
  ClqGroup g;
  g.found(mid(1));
  g.join(mid(2));
  g.join(mid(3));
  // mid(1) lacks a partial for the current controller mid(3): it must not
  // be able to issue a broadcast (it would lock mid(3) out).
  EXPECT_THROW(g.ctx(mid(1)).refresh(), std::logic_error);
}

TEST(ClqProtocol, MergeSingleNewMember) {
  ClqGroup g;
  g.found(mid(1));
  g.join(mid(2));
  g.merge({mid(3)});
  g.assert_key_agreement();
  EXPECT_EQ(g.ctx(mid(1)).controller(), mid(3));
}

TEST(ClqProtocol, MergeMultipleNewMembers) {
  ClqGroup g;
  g.found(mid(1));
  g.join(mid(2));
  g.merge({mid(3), mid(4), mid(5)});
  g.assert_key_agreement();
  EXPECT_EQ(g.members().size(), 5u);
  EXPECT_EQ(g.ctx(mid(1)).controller(), mid(5));
  // Group remains operable after a merge.
  g.join(mid(6));
  g.leave({mid(4)});
  g.assert_key_agreement();
}

TEST(ClqProtocol, MergeAfterControllerLoss) {
  // Partition heals: survivors merge returning members. The surviving
  // controller may be any member; merge works from arbitrary stored state.
  ClqGroup g;
  g.found(mid(1));
  for (std::uint32_t i = 2; i <= 4; ++i) g.join(mid(i));
  g.leave({mid(4)});  // controller lost
  g.merge({mid(7), mid(8)});
  g.assert_key_agreement();
}

TEST(ClqProtocol, SessionKeyDerivation) {
  ClqGroup g;
  g.found(mid(1));
  g.join(mid(2));
  const auto k1 = g.ctx(mid(1)).session_key(16);
  const auto k2 = g.ctx(mid(2)).session_key(16);
  EXPECT_EQ(k1, k2);
  EXPECT_EQ(k1.size(), 16u);
  g.join(mid(3));
  EXPECT_NE(g.ctx(mid(1)).session_key(16), k1);  // epoch change
}

TEST(ClqProtocol, LeaverCannotComputeNewKey) {
  ClqGroup g;
  g.found(mid(1));
  for (std::uint32_t i = 2; i <= 4; ++i) g.join(mid(i));
  // Snapshot the leaver's context before eviction.
  const Bignum leaver_old_key = g.ctx(mid(2)).raw_key();
  g.leave({mid(2)});
  g.assert_key_agreement();
  EXPECT_NE(g.ctx(mid(1)).raw_key(), leaver_old_key);
}

TEST(ClqProtocol, JoinerCannotComputeOldKey) {
  ClqGroup g;
  g.found(mid(1));
  g.join(mid(2));
  const Bignum old_key = g.ctx(mid(1)).raw_key();
  g.join(mid(3));
  EXPECT_NE(g.ctx(mid(3)).raw_key(), old_key);
}

TEST(ClqProtocol, RejectsInvalidElements) {
  ClqGroup g;
  g.found(mid(1));
  g.join(mid(2));
  ClqBroadcastMsg bogus;
  bogus.controller = mid(2);
  bogus.entries.push_back(ClqEntry{mid(1), {mid(2)}, Bignum(1)});  // order-1 element
  EXPECT_THROW(g.ctx(mid(1)).process_broadcast(bogus, g.members()), std::runtime_error);
}

TEST(ClqProtocol, BroadcastWithoutMyEntryRejected) {
  ClqGroup g;
  g.found(mid(1));
  g.join(mid(2));
  ClqBroadcastMsg bogus;
  bogus.controller = mid(2);
  EXPECT_THROW(g.ctx(mid(1)).process_broadcast(bogus, g.members()), std::runtime_error);
}

TEST(ClqProtocol, OnlyControllerMayHandOff) {
  ClqGroup g;
  g.found(mid(1));
  g.join(mid(2));
  EXPECT_THROW(g.ctx(mid(1)).join_handoff(mid(9)), std::logic_error);
}

TEST(ClqProtocol, MessageCodecsRoundTrip) {
  ClqGroup g;
  g.found(mid(1));
  ClqContext& c = g.ctx(mid(1));
  g.dir_.ensure(mid(2), g.rnd_);
  const ClqHandoffMsg handoff = c.join_handoff(mid(2));
  const ClqHandoffMsg decoded = ClqHandoffMsg::decode(handoff.encode());
  EXPECT_EQ(decoded.old_controller, handoff.old_controller);
  EXPECT_EQ(decoded.new_member, handoff.new_member);
  ASSERT_EQ(decoded.partials.size(), handoff.partials.size());
  for (std::size_t i = 0; i < decoded.partials.size(); ++i) {
    EXPECT_EQ(decoded.partials[i].member, handoff.partials[i].member);
    EXPECT_EQ(decoded.partials[i].chain, handoff.partials[i].chain);
    EXPECT_EQ(decoded.partials[i].value, handoff.partials[i].value);
  }
  EXPECT_EQ(decoded.group_element, handoff.group_element);
}

// --- Exponentiation counts: the paper's Tables 2-4 --------------------------

class ClqCounts : public ::testing::TestWithParam<int> {};

TEST_P(ClqCounts, JoinMatchesTable2) {
  const std::uint64_t n = static_cast<std::uint64_t>(GetParam());  // size incl. joiner
  ClqGroup g;
  g.found(mid(1));
  std::pair<ExpTally, ExpTally> tallies;
  for (std::uint64_t i = 2; i <= n; ++i) tallies = g.join(mid(static_cast<std::uint32_t>(i)));
  const auto& [controller, joiner] = tallies;

  // Controller: update key share with every member (n-1), long term key
  // with new member (1), new session key computation (1). Total n+1.
  EXPECT_EQ(controller.count(ExpPurpose::kUpdateKeyShare), n - 1);
  EXPECT_EQ(controller.count(ExpPurpose::kLongTermKey), 1u);
  EXPECT_EQ(controller.count(ExpPurpose::kSessionKey), 1u);
  EXPECT_EQ(controller.total(), n + 1);

  // New member: long term keys (n-1), encryption of session key (n-1),
  // new session key computation (1). Total 2n-1.
  EXPECT_EQ(joiner.count(ExpPurpose::kLongTermKey), n - 1);
  EXPECT_EQ(joiner.count(ExpPurpose::kEncryptSessionKey), n - 1);
  EXPECT_EQ(joiner.count(ExpPurpose::kSessionKey), 1u);
  EXPECT_EQ(joiner.total(), 2 * n - 1);
}

TEST_P(ClqCounts, LeaveMatchesTable3) {
  const std::uint64_t n = static_cast<std::uint64_t>(GetParam());  // size incl. leaver
  ClqGroup g;
  g.found(mid(1));
  for (std::uint64_t i = 2; i <= n; ++i) g.join(mid(static_cast<std::uint32_t>(i)));
  // Remove a non-controller member (mid(1) is the oldest).
  const ExpTally tally = g.leave({mid(1)});

  // Remove long term key with previous controller (1), new session key (1),
  // encryption of session key (n-2). Total n.
  EXPECT_EQ(tally.count(ExpPurpose::kLongTermKey), 1u);
  EXPECT_EQ(tally.count(ExpPurpose::kSessionKey), 1u);
  EXPECT_EQ(tally.count(ExpPurpose::kEncryptSessionKey), n - 2);
  EXPECT_EQ(tally.total(), n);
}

TEST_P(ClqCounts, ControllerLeaveMatchesTable4) {
  const std::uint64_t n = static_cast<std::uint64_t>(GetParam());
  ClqGroup g;
  g.found(mid(1));
  for (std::uint64_t i = 2; i <= n; ++i) g.join(mid(static_cast<std::uint32_t>(i)));
  // The controller itself leaves: Table 4 says Cliques still pays n.
  const ExpTally tally = g.leave({mid(static_cast<std::uint32_t>(n))});
  EXPECT_EQ(tally.total(), n);
  g.assert_key_agreement();
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, ClqCounts, ::testing::Values(3, 4, 5, 8, 12));

}  // namespace
}  // namespace ss::cliques
