// Integration tests for the group communication substrate: daemon
// membership (EVS configurations), lightweight groups, ordered delivery,
// partitions, merges, crashes and message loss.
#include <gtest/gtest.h>

#include <algorithm>

#include "tests/cluster_fixture.h"

namespace ss::gcs {
namespace {

using testing::Cluster;
using testing::RecordingClient;
using util::bytes_of;
using util::string_of;

TEST(Scheduler, OrdersEventsByTime) {
  sim::Scheduler s;
  std::vector<int> order;
  s.after(30, [&] { order.push_back(3); });
  s.after(10, [&] { order.push_back(1); });
  s.after(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30u);
}

TEST(Scheduler, SameInstantIsFifo) {
  sim::Scheduler s;
  std::vector<int> order;
  s.after(5, [&] { order.push_back(1); });
  s.after(5, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Scheduler, CancelPreventsExecution) {
  sim::Scheduler s;
  bool fired = false;
  auto id = s.after(5, [&] { fired = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, RunUntilAdvancesClock) {
  sim::Scheduler s;
  s.run_until(1000);
  EXPECT_EQ(s.now(), 1000u);
}

TEST(SimNetworkTest, DeliversWithLatency) {
  sim::Scheduler sched;
  sim::SimNetwork net(sched, 1);
  struct Sink : sim::NetNode {
    std::vector<std::string> got;
    void on_packet(sim::NodeId, const util::Frame& p) override {
      got.push_back(string_of(p.to_bytes()));
    }
  } a, b;
  net.add_node(&a);
  net.add_node(&b);
  net.send(0, 1, bytes_of("hello"));
  sched.run();
  ASSERT_EQ(b.got.size(), 1u);
  EXPECT_EQ(b.got[0], "hello");
  EXPECT_GE(sched.now(), 150u);  // base latency
}

TEST(SimNetworkTest, PartitionBlocksAndHealRestores) {
  sim::Scheduler sched;
  sim::SimNetwork net(sched, 1);
  struct Sink : sim::NetNode {
    int count = 0;
    void on_packet(sim::NodeId, const util::Frame&) override { ++count; }
  } a, b;
  net.add_node(&a);
  net.add_node(&b);
  net.partition({{0}, {1}});
  EXPECT_FALSE(net.connected(0, 1));
  net.send(0, 1, bytes_of("x"));
  sched.run();
  EXPECT_EQ(b.count, 0);
  net.heal();
  EXPECT_TRUE(net.connected(0, 1));
  net.send(0, 1, bytes_of("x"));
  sched.run();
  EXPECT_EQ(b.count, 1);
}

TEST(SimNetworkTest, CrashedNodeReceivesNothing) {
  sim::Scheduler sched;
  sim::SimNetwork net(sched, 1);
  struct Sink : sim::NetNode {
    int count = 0;
    void on_packet(sim::NodeId, const util::Frame&) override { ++count; }
  } a, b;
  net.add_node(&a);
  net.add_node(&b);
  net.crash(1);
  net.send(0, 1, bytes_of("x"));
  sched.run();
  EXPECT_EQ(b.count, 0);
  EXPECT_EQ(net.stats().packets_dropped_down, 1u);
}

// --- daemon membership -------------------------------------------------------

TEST(DaemonMembership, ThreeDaemonsConverge) {
  Cluster c(3);
  ASSERT_TRUE(c.converge(3));
  EXPECT_EQ(c.daemons[0]->view(), c.daemons[1]->view());
  EXPECT_EQ(c.daemons[1]->view(), c.daemons[2]->view());
  EXPECT_EQ(c.daemons[0]->view_members(), (std::vector<DaemonId>{0, 1, 2}));
}

TEST(DaemonMembership, PartitionSplitsViews) {
  Cluster c(3);
  ASSERT_TRUE(c.converge(3));
  c.net.partition({{0}, {1, 2}});
  ASSERT_TRUE(c.run_until([&] {
    return c.daemons[0]->is_operational() && c.daemons[0]->view_members().size() == 1 &&
           c.daemons[1]->is_operational() && c.daemons[1]->view_members().size() == 2 &&
           c.daemons[2]->is_operational() && c.daemons[1]->view() == c.daemons[2]->view();
  }));
}

TEST(DaemonMembership, HealMergesViews) {
  Cluster c(3);
  ASSERT_TRUE(c.converge(3));
  c.net.partition({{0}, {1, 2}});
  ASSERT_TRUE(c.run_until([&] { return c.daemons[0]->view_members().size() == 1; }));
  c.net.heal();
  ASSERT_TRUE(c.converge(3));
}

TEST(DaemonMembership, CrashShrinksView) {
  Cluster c(3);
  ASSERT_TRUE(c.converge(3));
  c.daemons[2]->crash();
  ASSERT_TRUE(c.run_until([&] {
    return c.daemons[0]->is_operational() && c.daemons[0]->view_members().size() == 2 &&
           c.daemons[0]->view() == c.daemons[1]->view();
  }));
}

TEST(DaemonMembership, CrashedDaemonRejoinsAfterRecover) {
  Cluster c(3);
  ASSERT_TRUE(c.converge(3));
  c.daemons[2]->crash();
  ASSERT_TRUE(c.run_until([&] { return c.daemons[0]->view_members().size() == 2; }));
  c.net.recover(2);
  c.daemons[2]->start();
  ASSERT_TRUE(c.converge(3));
}

TEST(DaemonMembership, ConvergesUnderPacketLoss) {
  sim::LinkModel lossy;
  lossy.loss = 0.05;
  Cluster c(3, /*seed=*/7, {}, lossy);
  ASSERT_TRUE(c.converge(3, 5 * sim::kSecond));
}

// --- lightweight groups ------------------------------------------------------

class GroupFixture : public ::testing::Test {
 protected:
  GroupFixture() : c(3) {
    EXPECT_TRUE(c.converge(3));
    for (int i = 0; i < 3; ++i) {
      clients.push_back(std::make_unique<RecordingClient>(*c.daemons[static_cast<size_t>(i)]));
    }
  }

  bool wait_members(const GroupName& g, std::size_t n, std::size_t n_clients) {
    return c.run_until([&] {
      for (std::size_t i = 0; i < n_clients; ++i) {
        const auto* v = clients[i]->last_view(g);
        if (v == nullptr || v->members.size() != n) return false;
      }
      return true;
    });
  }

  Cluster c;
  std::vector<std::unique_ptr<RecordingClient>> clients;
};

TEST_F(GroupFixture, JoinDeliversViewsToAllMembers) {
  clients[0]->mbox().join("room");
  ASSERT_TRUE(wait_members("room", 1, 1));
  clients[1]->mbox().join("room");
  ASSERT_TRUE(wait_members("room", 2, 2));

  const auto* v0 = clients[0]->last_view("room");
  const auto* v1 = clients[1]->last_view("room");
  ASSERT_NE(v0, nullptr);
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v0->members, v1->members);
  EXPECT_EQ(v0->reason, MembershipReason::kJoin);
  // Join order: client 0 joined first (oldest first).
  EXPECT_EQ(v0->members[0], clients[0]->id());
  EXPECT_EQ(v0->members[1], clients[1]->id());
  EXPECT_EQ(v1->joined, std::vector<MemberId>{clients[1]->id()});
}

TEST_F(GroupFixture, LeaveDeliversSelfLeaveAndPeerView) {
  clients[0]->mbox().join("room");
  clients[1]->mbox().join("room");
  ASSERT_TRUE(wait_members("room", 2, 2));
  clients[0]->mbox().leave("room");
  ASSERT_TRUE(c.run_until([&] {
    const auto* v1 = clients[1]->last_view("room");
    const auto* v0 = clients[0]->last_view("room");
    return v1 != nullptr && v1->members.size() == 1 && v0 != nullptr &&
           v0->reason == MembershipReason::kSelfLeave;
  }));
  const auto* v1 = clients[1]->last_view("room");
  EXPECT_EQ(v1->reason, MembershipReason::kLeave);
  EXPECT_EQ(v1->left, std::vector<MemberId>{clients[0]->id()});
}

TEST_F(GroupFixture, KilledClientShowsAsDisconnect) {
  clients[0]->mbox().join("room");
  clients[1]->mbox().join("room");
  ASSERT_TRUE(wait_members("room", 2, 2));
  clients[1]->mbox().kill();
  ASSERT_TRUE(c.run_until([&] {
    const auto* v = clients[0]->last_view("room");
    return v != nullptr && v->members.size() == 1;
  }));
  EXPECT_EQ(clients[0]->last_view("room")->reason, MembershipReason::kDisconnect);
}

TEST_F(GroupFixture, FifoMulticastReachesAllMembersInOrder) {
  for (auto& cl : clients) cl->mbox().join("room");
  ASSERT_TRUE(wait_members("room", 3, 3));
  for (int i = 0; i < 5; ++i) {
    clients[0]->mbox().multicast(ServiceType::kFifo, "room", bytes_of("m" + std::to_string(i)));
  }
  ASSERT_TRUE(c.run_until([&] {
    return clients[1]->payloads("room").size() == 5 && clients[2]->payloads("room").size() == 5 &&
           clients[0]->payloads("room").size() == 5;  // self delivery
  }));
  const std::vector<std::string> expect = {"m0", "m1", "m2", "m3", "m4"};
  EXPECT_EQ(clients[0]->payloads("room"), expect);
  EXPECT_EQ(clients[1]->payloads("room"), expect);
  EXPECT_EQ(clients[2]->payloads("room"), expect);
}

TEST_F(GroupFixture, AgreedMulticastIsTotallyOrdered) {
  for (auto& cl : clients) cl->mbox().join("room");
  ASSERT_TRUE(wait_members("room", 3, 3));
  // Concurrent senders: all members must deliver the identical sequence.
  for (int i = 0; i < 4; ++i) {
    for (auto& cl : clients) {
      cl->mbox().multicast(ServiceType::kAgreed, "room",
                           bytes_of(cl->id().to_string() + ":" + std::to_string(i)));
    }
  }
  ASSERT_TRUE(c.run_until([&] {
    return clients[0]->payloads("room").size() == 12 &&
           clients[1]->payloads("room").size() == 12 && clients[2]->payloads("room").size() == 12;
  }));
  EXPECT_EQ(clients[0]->payloads("room"), clients[1]->payloads("room"));
  EXPECT_EQ(clients[1]->payloads("room"), clients[2]->payloads("room"));
}

TEST_F(GroupFixture, SafeMulticastDelivered) {
  for (auto& cl : clients) cl->mbox().join("room");
  ASSERT_TRUE(wait_members("room", 3, 3));
  clients[0]->mbox().multicast(ServiceType::kSafe, "room", bytes_of("stable"));
  ASSERT_TRUE(c.run_until([&] {
    return clients[1]->payloads("room").size() == 1 && clients[2]->payloads("room").size() == 1;
  }));
  EXPECT_EQ(clients[1]->payloads("room")[0], "stable");
}

TEST_F(GroupFixture, CausalRespectsHappensBefore) {
  for (auto& cl : clients) cl->mbox().join("room");
  ASSERT_TRUE(wait_members("room", 3, 3));
  clients[0]->mbox().multicast(ServiceType::kCausal, "room", bytes_of("cause"));
  ASSERT_TRUE(c.run_until([&] { return clients[1]->payloads("room").size() == 1; }));
  clients[1]->mbox().multicast(ServiceType::kCausal, "room", bytes_of("effect"));
  ASSERT_TRUE(c.run_until([&] { return clients[2]->payloads("room").size() == 2; }));
  EXPECT_EQ(clients[2]->payloads("room"), (std::vector<std::string>{"cause", "effect"}));
}

TEST_F(GroupFixture, UnicastBetweenMembers) {
  clients[0]->mbox().join("room");
  clients[2]->mbox().join("room");
  ASSERT_TRUE(wait_members("room", 2, 1));
  clients[0]->mbox().unicast(clients[2]->id(), "room", bytes_of("psst"), 42);
  ASSERT_TRUE(c.run_until([&] { return !clients[2]->messages.empty(); }));
  const Message& m = clients[2]->messages.back();
  EXPECT_EQ(string_of(m.payload), "psst");
  EXPECT_EQ(m.msg_type, 42);
  EXPECT_EQ(m.sender, clients[0]->id());
}

TEST_F(GroupFixture, NonMembersDoNotReceive) {
  clients[0]->mbox().join("room");
  clients[1]->mbox().join("room");
  ASSERT_TRUE(wait_members("room", 2, 2));
  clients[0]->mbox().multicast(ServiceType::kFifo, "room", bytes_of("private"));
  ASSERT_TRUE(c.run_until([&] { return clients[1]->payloads("room").size() == 1; }));
  EXPECT_TRUE(clients[2]->payloads("room").empty());
}

TEST_F(GroupFixture, PartitionDeliversNetworkViews) {
  for (auto& cl : clients) cl->mbox().join("room");
  ASSERT_TRUE(wait_members("room", 3, 3));
  c.net.partition({{0}, {1, 2}});
  ASSERT_TRUE(c.run_until([&] {
    const auto* v0 = clients[0]->last_view("room");
    const auto* v1 = clients[1]->last_view("room");
    return v0 != nullptr && v0->members.size() == 1 && v1 != nullptr && v1->members.size() == 2;
  }));
  EXPECT_EQ(clients[0]->last_view("room")->reason, MembershipReason::kNetwork);
  EXPECT_EQ(clients[1]->last_view("room")->reason, MembershipReason::kNetwork);
  // Transitional signal preceded the network view.
  EXPECT_FALSE(clients[1]->transitionals.empty());
}

TEST_F(GroupFixture, MergeRestoresFullGroupAndJoinOrder) {
  for (auto& cl : clients) cl->mbox().join("room");
  ASSERT_TRUE(wait_members("room", 3, 3));
  const auto order_before = clients[0]->last_view("room")->members;
  c.net.partition({{0}, {1, 2}});
  ASSERT_TRUE(c.run_until([&] {
    const auto* v0 = clients[0]->last_view("room");
    return v0 != nullptr && v0->members.size() == 1;
  }));
  c.net.heal();
  ASSERT_TRUE(wait_members("room", 3, 3));
  // Join order must be restored identically (shared history).
  EXPECT_EQ(clients[0]->last_view("room")->members, order_before);
  EXPECT_EQ(clients[1]->last_view("room")->members, order_before);
}

TEST_F(GroupFixture, VirtualSynchronyUnderPartition) {
  // Members that travel together between views deliver the same set of
  // messages — the property the security layer keys on.
  for (auto& cl : clients) cl->mbox().join("room");
  ASSERT_TRUE(wait_members("room", 3, 3));
  // A burst in flight while the network splits.
  for (int i = 0; i < 10; ++i) {
    clients[1]->mbox().multicast(ServiceType::kAgreed, "room", bytes_of("b" + std::to_string(i)));
  }
  c.net.partition({{0}, {1, 2}});
  ASSERT_TRUE(c.run_until([&] {
    const auto* v1 = clients[1]->last_view("room");
    const auto* v2 = clients[2]->last_view("room");
    return v1 != nullptr && v1->members.size() == 2 && v2 != nullptr && v2->members.size() == 2;
  }, 5 * sim::kSecond));
  c.run_for(100 * sim::kMillisecond);
  // Daemons 1 and 2 went through the change together: identical delivery.
  EXPECT_EQ(clients[1]->payloads("room"), clients[2]->payloads("room"));
}

TEST_F(GroupFixture, MessagesDeliveredUnderLoss) {
  // Recreate with loss on the wire (separate cluster for isolation).
  sim::LinkModel lossy;
  lossy.loss = 0.08;
  Cluster lc(3, 99, {}, lossy);
  ASSERT_TRUE(lc.converge(3, 5 * sim::kSecond));
  RecordingClient a(*lc.daemons[0]);
  RecordingClient b(*lc.daemons[2]);
  a.mbox().join("g");
  b.mbox().join("g");
  ASSERT_TRUE(lc.run_until([&] {
    const auto* v = b.last_view("g");
    return v != nullptr && v->members.size() == 2;
  }, 5 * sim::kSecond));
  for (int i = 0; i < 20; ++i) {
    a.mbox().multicast(ServiceType::kFifo, "g", bytes_of("p" + std::to_string(i)));
  }
  ASSERT_TRUE(lc.run_until([&] { return b.payloads("g").size() == 20; }, 10 * sim::kSecond));
  std::vector<std::string> expect;
  for (int i = 0; i < 20; ++i) expect.push_back("p" + std::to_string(i));
  EXPECT_EQ(b.payloads("g"), expect);
}

TEST_F(GroupFixture, GroupStateSurvivesDaemonCrashOfOtherMembers) {
  for (auto& cl : clients) cl->mbox().join("room");
  ASSERT_TRUE(wait_members("room", 3, 3));
  c.daemons[0]->crash();
  ASSERT_TRUE(c.run_until([&] {
    const auto* v = clients[1]->last_view("room");
    return v != nullptr && v->members.size() == 2;
  }, 5 * sim::kSecond));
  EXPECT_EQ(clients[1]->last_view("room")->reason, MembershipReason::kNetwork);
  // Survivors can still communicate.
  clients[1]->mbox().multicast(ServiceType::kAgreed, "room", bytes_of("still here"));
  ASSERT_TRUE(c.run_until([&] { return !clients[2]->payloads("room").empty(); }));
}

TEST_F(GroupFixture, MultipleGroupsAreIndependent) {
  clients[0]->mbox().join("alpha");
  clients[1]->mbox().join("beta");
  ASSERT_TRUE(c.run_until([&] {
    return clients[0]->last_view("alpha") != nullptr && clients[1]->last_view("beta") != nullptr;
  }));
  clients[0]->mbox().multicast(ServiceType::kFifo, "alpha", bytes_of("a"));
  clients[1]->mbox().multicast(ServiceType::kFifo, "beta", bytes_of("b"));
  ASSERT_TRUE(c.run_until([&] {
    return clients[0]->payloads("alpha").size() == 1 && clients[1]->payloads("beta").size() == 1;
  }));
  EXPECT_TRUE(clients[0]->payloads("beta").empty());
  EXPECT_TRUE(clients[1]->payloads("alpha").empty());
}

}  // namespace
}  // namespace ss::gcs
