// Known-answer tests for SHA-1 (FIPS 180-1), HMAC-SHA1 (RFC 2202) and the
// KDF, plus the pi spigot that seeds Blowfish and the Oakley primes.
#include <gtest/gtest.h>

#include "crypto/hmac.h"
#include "crypto/pi_spigot.h"
#include "crypto/sha1.h"
#include "util/bytes.h"

namespace ss::crypto {
namespace {

using util::Bytes;
using util::bytes_of;
using util::from_hex;
using util::to_hex;

struct Sha1Vector {
  const char* input;
  const char* digest;
};

class Sha1Kat : public ::testing::TestWithParam<Sha1Vector> {};

TEST_P(Sha1Kat, Matches) {
  EXPECT_EQ(to_hex(Sha1::hash(bytes_of(GetParam().input))), GetParam().digest);
}

INSTANTIATE_TEST_SUITE_P(
    Fips, Sha1Kat,
    ::testing::Values(
        Sha1Vector{"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"},
        Sha1Vector{"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"},
        Sha1Vector{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                   "84983e441c3bd26ebaae4aa1f95129e5e54670f1"},
        Sha1Vector{"The quick brown fox jumps over the lazy dog",
                   "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"}));

TEST(Sha1Test, MillionA) {
  Sha1 ctx;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    ctx.update(reinterpret_cast<const std::uint8_t*>(chunk.data()), chunk.size());
  }
  auto d = ctx.digest();
  EXPECT_EQ(to_hex(d.data(), d.size()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, IncrementalMatchesOneShot) {
  const Bytes msg = bytes_of("incremental hashing must match one-shot hashing exactly");
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha1 ctx;
    ctx.update(msg.data(), split);
    ctx.update(msg.data() + split, msg.size() - split);
    auto d = ctx.digest();
    ASSERT_EQ(Bytes(d.begin(), d.end()), Sha1::hash(msg)) << "split=" << split;
  }
}

TEST(Sha1Test, ResetReusesObject) {
  Sha1 ctx;
  ctx.update(bytes_of("garbage"));
  ctx.reset();
  ctx.update(bytes_of("abc"));
  auto d = ctx.digest();
  EXPECT_EQ(to_hex(d.data(), d.size()), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(HmacTest, Rfc2202Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha1(key, bytes_of("Hi There"))),
            "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(HmacTest, Rfc2202Case2) {
  EXPECT_EQ(to_hex(hmac_sha1(bytes_of("Jefe"), bytes_of("what do ya want for nothing?"))),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(HmacTest, Rfc2202Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha1(key, data)), "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
}

TEST(HmacTest, Rfc2202Case6LongKey) {
  const Bytes key(80, 0xaa);
  EXPECT_EQ(to_hex(hmac_sha1(key, bytes_of("Test Using Larger Than Block-Size Key - Hash Key First"))),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112");
}

TEST(KdfTest, DeterministicAndLabelSeparated) {
  const Bytes ikm = bytes_of("group secret material");
  const Bytes a1 = kdf_sha1(ikm, "cipher", 16);
  const Bytes a2 = kdf_sha1(ikm, "cipher", 16);
  const Bytes b = kdf_sha1(ikm, "mac", 16);
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(a1.size(), 16u);
}

TEST(KdfTest, PrefixConsistentAcrossLengths) {
  const Bytes ikm = bytes_of("ikm");
  const Bytes short_key = kdf_sha1(ikm, "label", 10);
  const Bytes long_key = kdf_sha1(ikm, "label", 50);
  EXPECT_TRUE(std::equal(short_key.begin(), short_key.end(), long_key.begin()));
  EXPECT_EQ(long_key.size(), 50u);
}

TEST(KdfTest, DifferentIkmDiverges) {
  EXPECT_NE(kdf_sha1(bytes_of("a"), "l", 20), kdf_sha1(bytes_of("b"), "l", 20));
}

TEST(PiSpigot, KnownPrefix) {
  // First hex digits of pi's fractional part — also Blowfish's initial
  // P-array: 243F6A88 85A308D3 13198A2E 03707344 A4093822 299F31D0.
  EXPECT_EQ(pi_frac_hex(48), "243f6a8885a308d313198a2e03707344a4093822299f31d0");
}

TEST(PiSpigot, LongerRunIsConsistentPrefix) {
  const std::string short_run = pi_frac_hex(64);
  const std::string long_run = pi_frac_hex(512);
  EXPECT_EQ(long_run.substr(0, 64), short_run);
}

TEST(PiSpigot, OddLengthRequest) {
  EXPECT_EQ(pi_frac_hex(7), "243f6a8");
  EXPECT_EQ(pi_frac_hex(0), "");
  EXPECT_EQ(pi_frac_hex(1), "2");
}

TEST(PiSpigot, FloorShifted) {
  // floor(2 * pi) = 6, floor(16 * pi) = 50, floor(2^10 pi) = 3216.
  EXPECT_EQ(pi_floor_shifted(1), Bignum(6));
  EXPECT_EQ(pi_floor_shifted(4), Bignum(50));
  EXPECT_EQ(pi_floor_shifted(10), Bignum(3216));
}

}  // namespace
}  // namespace ss::crypto
