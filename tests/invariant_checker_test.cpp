// Tests for the protocol invariant checker itself (src/check): each checked
// property is exercised with a synthetic event stream that satisfies it and
// one that violates it, and a live-cluster self-test seeds a deliberate
// violation through the real trace hooks to prove the wiring fires.
#include "check/invariant_checker.h"

#include <gtest/gtest.h>

#include "flush/flush.h"
#include "tests/cluster_fixture.h"

namespace ss::check {
namespace {

using gcs::GroupView;
using gcs::GroupViewId;
using gcs::MemberId;
using gcs::MembershipReason;
using gcs::Message;
using gcs::ServiceType;
using gcs::TraceLayer;
using gcs::ViewId;
using util::bytes_of;

MemberId member(std::uint32_t daemon, std::uint32_t client = 1) {
  return MemberId{static_cast<gcs::DaemonId>(daemon), client};
}

GroupViewId vid(std::uint64_t round, std::uint64_t change = 0) {
  return GroupViewId{ViewId{round, 0}, change};
}

GroupView make_view(const std::string& group, GroupViewId id, std::vector<MemberId> members,
                    MembershipReason reason = MembershipReason::kJoin) {
  GroupView v;
  v.group = group;
  v.view_id = id;
  v.members = std::move(members);
  v.reason = reason;
  return v;
}

Message make_msg(const std::string& group, MemberId sender, GroupViewId view,
                 const std::string& payload, ServiceType service = ServiceType::kFifo) {
  Message m;
  m.group = group;
  m.sender = sender;
  m.service = service;
  m.payload = bytes_of(payload);
  m.view_id = view;
  return m;
}

std::vector<std::string> properties(const std::vector<Violation>& vs) {
  std::vector<std::string> out;
  for (const auto& v : vs) out.push_back(v.property);
  return out;
}

bool has_property(const std::vector<Violation>& vs, const std::string& p) {
  for (const auto& v : vs) {
    if (v.property == p) return true;
  }
  return false;
}

// --- I1 self-inclusion -------------------------------------------------------

TEST(InvariantChecker, SelfInclusionHolds) {
  InvariantChecker ck;
  ck.on_view(TraceLayer::kGcs, member(0), make_view("g", vid(1), {member(0), member(1)}));
  ck.finalize();
  EXPECT_TRUE(ck.ok()) << ck.report();
}

TEST(InvariantChecker, SelfInclusionViolationFires) {
  InvariantChecker ck;
  // A view delivered to member(0) that does not contain it.
  ck.on_view(TraceLayer::kGcs, member(0), make_view("g", vid(1), {member(1), member(2)}));
  const auto vs = ck.finalize_and_take();
  EXPECT_TRUE(has_property(vs, "self-inclusion")) << ::testing::PrintToString(properties(vs));
}

TEST(InvariantChecker, SelfLeaveViewMustExcludeReceiver) {
  InvariantChecker ck;
  auto bye = make_view("g", vid(2), {member(0)}, MembershipReason::kSelfLeave);
  ck.on_view(TraceLayer::kFlush, member(0), bye);
  const auto vs = ck.finalize_and_take();
  EXPECT_TRUE(has_property(vs, "self-inclusion"));
}

// --- I2 view monotonicity ----------------------------------------------------

TEST(InvariantChecker, ViewMonotonicityViolationFires) {
  InvariantChecker ck;
  ck.on_view(TraceLayer::kGcs, member(0), make_view("g", vid(2), {member(0)}));
  ck.on_view(TraceLayer::kGcs, member(0), make_view("g", vid(1), {member(0)}));
  const auto vs = ck.finalize_and_take();
  EXPECT_TRUE(has_property(vs, "view-monotonicity"));
}

TEST(InvariantChecker, ReattachStartsFreshStream) {
  InvariantChecker ck;
  ck.on_attach(member(0));
  ck.on_view(TraceLayer::kGcs, member(0), make_view("g", vid(5), {member(0)}));
  // Daemon restart: the same member id comes back with a lower view round.
  ck.on_attach(member(0));
  ck.on_view(TraceLayer::kGcs, member(0), make_view("g", vid(1), {member(0)}));
  ck.finalize();
  EXPECT_TRUE(ck.ok()) << ck.report();
}

// --- I3 transitional signal --------------------------------------------------

TEST(InvariantChecker, NetworkViewRequiresTransitional) {
  InvariantChecker ck;
  ck.on_view(TraceLayer::kGcs, member(0), make_view("g", vid(1), {member(0), member(1)}));
  ck.on_view(TraceLayer::kGcs, member(0),
             make_view("g", vid(2), {member(0)}, MembershipReason::kNetwork));
  const auto vs = ck.finalize_and_take();
  EXPECT_TRUE(has_property(vs, "transitional-before-view"));
}

TEST(InvariantChecker, TransitionalThenNetworkViewIsClean) {
  InvariantChecker ck;
  ck.on_view(TraceLayer::kGcs, member(0), make_view("g", vid(1), {member(0), member(1)}));
  ck.on_transitional(TraceLayer::kGcs, member(0), "g");
  ck.on_view(TraceLayer::kGcs, member(0),
             make_view("g", vid(2), {member(0)}, MembershipReason::kNetwork));
  ck.finalize();
  EXPECT_TRUE(ck.ok()) << ck.report();
}

// --- I4 view agreement -------------------------------------------------------

TEST(InvariantChecker, ViewAgreementViolationFires) {
  InvariantChecker ck;
  ck.on_view(TraceLayer::kGcs, member(0), make_view("g", vid(1), {member(0), member(1)}));
  // member(1) installs the same view id with different membership.
  ck.on_view(TraceLayer::kGcs, member(1), make_view("g", vid(1), {member(1)}));
  const auto vs = ck.finalize_and_take();
  EXPECT_TRUE(has_property(vs, "view-agreement"));
}

// --- I5 per-sender FIFO ------------------------------------------------------

TEST(InvariantChecker, FifoConsistencyHolds) {
  InvariantChecker ck;
  const auto v = vid(1);
  for (auto m : {member(0), member(1)}) {
    ck.on_view(TraceLayer::kFlush, m, make_view("g", v, {member(0), member(1)}));
  }
  for (auto m : {member(0), member(1)}) {
    ck.on_message(TraceLayer::kFlush, m, make_msg("g", member(0), v, "a"));
    ck.on_message(TraceLayer::kFlush, m, make_msg("g", member(0), v, "b"));
  }
  ck.finalize();
  EXPECT_TRUE(ck.ok()) << ck.report();
}

TEST(InvariantChecker, FifoViolationFires) {
  InvariantChecker ck;
  const auto v = vid(1);
  for (auto m : {member(0), member(1)}) {
    ck.on_view(TraceLayer::kFlush, m, make_view("g", v, {member(0), member(1)}));
  }
  ck.on_message(TraceLayer::kFlush, member(0), make_msg("g", member(0), v, "a"));
  ck.on_message(TraceLayer::kFlush, member(0), make_msg("g", member(0), v, "b"));
  // member(1) sees the same sender's messages in the opposite order.
  ck.on_message(TraceLayer::kFlush, member(1), make_msg("g", member(0), v, "b"));
  ck.on_message(TraceLayer::kFlush, member(1), make_msg("g", member(0), v, "a"));
  const auto vs = ck.finalize_and_take();
  EXPECT_TRUE(has_property(vs, "fifo-order"));
}

// --- I6 total order ----------------------------------------------------------

TEST(InvariantChecker, TotalOrderPrefixIsAccepted) {
  InvariantChecker ck;
  const auto v = vid(1);
  for (auto m : {member(0), member(1)}) {
    ck.on_view(TraceLayer::kGcs, m, make_view("g", v, {member(0), member(1)}));
  }
  for (const char* p : {"x", "y", "z"}) {
    ck.on_message(TraceLayer::kGcs, member(0),
                  make_msg("g", member(1), v, p, ServiceType::kAgreed));
  }
  // member(1) is one message behind (still in flight): a legal prefix.
  for (const char* p : {"x", "y"}) {
    ck.on_message(TraceLayer::kGcs, member(1),
                  make_msg("g", member(1), v, p, ServiceType::kAgreed));
  }
  ck.finalize();
  EXPECT_TRUE(ck.ok()) << ck.report();
}

TEST(InvariantChecker, TotalOrderViolationFires) {
  InvariantChecker ck;
  const auto v = vid(1);
  for (auto m : {member(0), member(1)}) {
    ck.on_view(TraceLayer::kGcs, m, make_view("g", v, {member(0), member(1)}));
  }
  // Two members deliver concurrent agreed messages in different orders.
  ck.on_message(TraceLayer::kGcs, member(0), make_msg("g", member(0), v, "x", ServiceType::kAgreed));
  ck.on_message(TraceLayer::kGcs, member(0), make_msg("g", member(1), v, "y", ServiceType::kAgreed));
  ck.on_message(TraceLayer::kGcs, member(1), make_msg("g", member(1), v, "y", ServiceType::kAgreed));
  ck.on_message(TraceLayer::kGcs, member(1), make_msg("g", member(0), v, "x", ServiceType::kAgreed));
  const auto vs = ck.finalize_and_take();
  EXPECT_TRUE(has_property(vs, "total-order"));
}

// --- I7 same-view delivery ---------------------------------------------------

TEST(InvariantChecker, OldViewMessageAfterNewViewFires) {
  InvariantChecker ck;
  ck.on_view(TraceLayer::kFlush, member(0), make_view("g", vid(1), {member(0)}));
  ck.on_view(TraceLayer::kFlush, member(0), make_view("g", vid(2), {member(0), member(1)}));
  // A message of the superseded view arrives after the new view installed.
  ck.on_message(TraceLayer::kFlush, member(0), make_msg("g", member(1), vid(1), "stale"));
  const auto vs = ck.finalize_and_take();
  EXPECT_TRUE(has_property(vs, "same-view-delivery"));
}

TEST(InvariantChecker, MessageBeforeItsViewInstallFires) {
  InvariantChecker ck;
  ck.on_view(TraceLayer::kFlush, member(0), make_view("g", vid(1), {member(0)}));
  // Message of view 2 delivered, then view 2 installs: VS forbids this.
  ck.on_message(TraceLayer::kFlush, member(0), make_msg("g", member(1), vid(2), "early"));
  ck.on_view(TraceLayer::kFlush, member(0), make_view("g", vid(2), {member(0), member(1)}));
  const auto vs = ck.finalize_and_take();
  EXPECT_TRUE(has_property(vs, "same-view-delivery"));
}

TEST(InvariantChecker, CascadeDeliveryOfAbandonedViewIsLegal) {
  InvariantChecker ck;
  ck.on_view(TraceLayer::kFlush, member(0), make_view("g", vid(1), {member(0)}));
  // Buffered messages of a view this member never installs (cascade).
  ck.on_message(TraceLayer::kFlush, member(0), make_msg("g", member(1), vid(2), "cascade"));
  ck.on_transitional(TraceLayer::kFlush, member(0), "g");
  ck.on_view(TraceLayer::kFlush, member(0),
             make_view("g", vid(3), {member(0)}, MembershipReason::kNetwork));
  ck.finalize();
  EXPECT_TRUE(ck.ok()) << ck.report();
}

// --- I8 key-view consistency -------------------------------------------------

TEST(InvariantChecker, KeyLifecycleIsClean) {
  InvariantChecker ck;
  const auto v = vid(1);
  const util::Bytes key = bytes_of("keyid-01");
  ck.on_key_installed(member(0), "g", 1, key, v);
  ck.on_key_installed(member(1), "g", 1, key, v);
  ck.on_message_opened(member(0), "g", key, v, v);
  ck.finalize();
  EXPECT_TRUE(ck.ok()) << ck.report();
}

TEST(InvariantChecker, KeyEpochMustIncrease) {
  InvariantChecker ck;
  ck.on_key_installed(member(0), "g", 2, bytes_of("keyid-02"), vid(1));
  ck.on_key_installed(member(0), "g", 2, bytes_of("keyid-03"), vid(1));
  const auto vs = ck.finalize_and_take();
  EXPECT_TRUE(has_property(vs, "key-epoch-monotonic"));
}

TEST(InvariantChecker, KeyEpochRestartsAfterRejoin) {
  InvariantChecker ck;
  ck.on_key_installed(member(0), "g", 1, bytes_of("keyid-a"), vid(1));
  ck.on_key_installed(member(0), "g", 2, bytes_of("keyid-b"), vid(1));
  ck.on_view(TraceLayer::kFlush, member(0), make_view("g", vid(2), {}, MembershipReason::kSelfLeave));
  // Rejoining starts a fresh key-agreement history: epoch 1 again is legal.
  ck.on_key_installed(member(0), "g", 1, bytes_of("keyid-c"), vid(3));
  ck.finalize();
  EXPECT_TRUE(ck.ok()) << ck.report();
}

TEST(InvariantChecker, KeyAgreedInDifferentViewsFires) {
  InvariantChecker ck;
  const util::Bytes key = bytes_of("keyid-04");
  ck.on_key_installed(member(0), "g", 1, key, vid(1));
  ck.on_key_installed(member(1), "g", 1, key, vid(2));
  const auto vs = ck.finalize_and_take();
  EXPECT_TRUE(has_property(vs, "key-view-agreement"));
}

TEST(InvariantChecker, DecryptionUnderForeignViewKeyFires) {
  InvariantChecker ck;
  const util::Bytes key = bytes_of("keyid-05");
  ck.on_key_installed(member(0), "g", 1, key, vid(1));
  // The member moved to view 2 but still decrypts with view 1's key.
  ck.on_message_opened(member(0), "g", key, vid(2), vid(2));
  const auto vs = ck.finalize_and_take();
  EXPECT_TRUE(has_property(vs, "key-view-consistency"));
}

TEST(InvariantChecker, DecryptionWithUnknownKeyFires) {
  InvariantChecker ck;
  ck.on_message_opened(member(0), "g", bytes_of("keyid-06"), vid(1), vid(1));
  const auto vs = ck.finalize_and_take();
  EXPECT_TRUE(has_property(vs, "key-view-consistency"));
}

// --- live wiring -------------------------------------------------------------

// A healthy cluster run must produce trace events and no violations (the
// Cluster destructor re-asserts this for every test in the suite).
TEST(InvariantCheckerLive, CleanClusterTrafficProducesEventsAndNoViolations) {
  ss::testing::Cluster c(3);
  ASSERT_TRUE(c.converge(3));
  {
    flush::FlushMailbox a(*c.daemons[0]);
    flush::FlushMailbox b(*c.daemons[1]);
    a.on_flush_request([&a](const gcs::GroupName& g) { a.flush_ok(g); });
    b.on_flush_request([&b](const gcs::GroupName& g) { b.flush_ok(g); });
    a.join("g");
    b.join("g");
    ASSERT_TRUE(c.run_until([&] {
      const auto* va = a.current_view("g");
      const auto* vb = b.current_view("g");
      return va != nullptr && va->members.size() == 2 && vb != nullptr &&
             vb->members.size() == 2;
    }));
    ASSERT_TRUE(a.send(gcs::ServiceType::kAgreed, "g", bytes_of("hello")));
    c.run_for(200 * sim::kMillisecond);
  }
  EXPECT_GT(c.checker.events_observed(), 0u);
  c.checker.finalize();
  EXPECT_TRUE(c.checker.ok()) << c.checker.report();
}

// Seeded-violation self-test: inject a protocol-breaking event into the
// live cluster's checker through the same trace entry points the client
// stack uses, and demonstrate the checker catches it.
TEST(InvariantCheckerLive, SeededViolationIsCaught) {
  ss::testing::Cluster c(2);
  ASSERT_TRUE(c.converge(2));
  testing::RecordingClient a(*c.daemons[0]);
  testing::RecordingClient b(*c.daemons[1]);
  a.mbox().join("g");
  b.mbox().join("g");
  ASSERT_TRUE(c.run_until([&] {
    const auto* v = b.last_view("g");
    return v != nullptr && v->members.size() == 2;
  }));
  ASSERT_TRUE(c.checker.finalize_and_take().empty()) << "cluster unhealthy before seeding";

  // Seed: replay member a's current view to it with one member missing —
  // breaking both self-inclusion (if a is dropped) and view agreement.
  gcs::GroupView forged = *a.last_view("g");
  forged.members = {b.id()};
  gcs::ClientTrace::global()->on_view(gcs::TraceLayer::kGcs, a.id(), forged);

  auto vs = c.checker.finalize_and_take();
  EXPECT_TRUE(has_property(vs, "self-inclusion")) << ::testing::PrintToString(properties(vs));
  EXPECT_TRUE(has_property(vs, "view-agreement"));
  EXPECT_TRUE(has_property(vs, "view-monotonicity"));

  // Reset so the Cluster destructor does not fail this (expected) seeding.
  c.checker.reset();
}

}  // namespace
}  // namespace ss::check
