// netd tests: cluster-conf error routing (file:line:col messages),
// deterministic key preprovisioning across independent processes, the
// client wire codec, and a live DaemonHost + ClientGate + Client loop on
// localhost TCP.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cliques/key_directory.h"
#include "crypto/dh.h"
#include "gcs/link_crypto.h"
#include "netd/client.h"
#include "netd/client_gate.h"
#include "netd/client_wire.h"
#include "netd/daemon_host.h"
#include "netd/keystore.h"

namespace {

using namespace ss;

std::string error_of(const std::string& conf_text) {
  try {
    netd::parse_cluster_conf(conf_text, "cluster.conf");
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(ClusterConf, ParsesAddressesIntoTheMap) {
  const netd::ClusterConf conf = netd::parse_cluster_conf(
      "daemon 0 127.0.0.1:4803\n"
      "daemon 1 127.0.0.1:4804\n"
      "heartbeat_ms 50\n",
      "cluster.conf");
  EXPECT_EQ(conf.base.daemons.size(), 2u);
  EXPECT_EQ(conf.addresses.of(0).to_string(), "127.0.0.1:4803");
  EXPECT_EQ(conf.addresses.of(1).to_string(), "127.0.0.1:4804");
  EXPECT_EQ(conf.base.timing.heartbeat_interval, 50 * runtime::kMillisecond);
}

TEST(ClusterConf, MissingAddressNamesTheLineAndTheFix) {
  const std::string what = error_of("daemon 0 127.0.0.1:4803\ndaemon 1\n");
  EXPECT_NE(what.find("cluster.conf"), std::string::npos) << what;
  EXPECT_NE(what.find("line 2"), std::string::npos) << what;
  EXPECT_NE(what.find("daemon <id> <ip:port>"), std::string::npos) << what;
}

TEST(ClusterConf, BadAddressCarriesLineAndColumn) {
  const std::string what = error_of("daemon 0 127.0.0.1:4803\ndaemon 1 127.0.0.1:99999\n");
  EXPECT_NE(what.find("line 2"), std::string::npos) << what;
  EXPECT_NE(what.find("column 11"), std::string::npos) << what;  // port digits start at col 11
}

TEST(ClusterConf, DuplicateEndpointIsRejected) {
  const std::string what = error_of("daemon 0 127.0.0.1:4803\ndaemon 1 127.0.0.1:4803\n");
  EXPECT_NE(what.find("line 2"), std::string::npos) << what;
}

TEST(ClusterConf, UnreadableFileThrowsRuntimeError) {
  EXPECT_THROW(netd::load_cluster_conf("/nonexistent/cluster.conf"), std::runtime_error);
}

TEST(Keystore, DaemonKeysAreIdenticalAcrossIndependentStores) {
  // Two spreadd processes never exchange keys: both must derive the same
  // long-term pairs from the shared master seed, in any provisioning order.
  const std::vector<gcs::DaemonId> daemons = {0, 1, 2};
  gcs::DaemonKeyStore a(crypto::DhGroup::tiny64());
  gcs::DaemonKeyStore b(crypto::DhGroup::tiny64());
  netd::provision_daemon_keys(a, daemons, 0x5353);
  netd::provision_daemon_keys(b, {2, 0, 1}, 0x5353);  // different order
  for (gcs::DaemonId d : daemons) {
    EXPECT_EQ(a.public_key(d), b.public_key(d)) << "daemon " << d;
    EXPECT_EQ(a.private_key(d), b.private_key(d)) << "daemon " << d;
  }
  gcs::DaemonKeyStore c(crypto::DhGroup::tiny64());
  netd::provision_daemon_keys(c, daemons, 0x5354);  // different seed
  EXPECT_NE(a.private_key(0), c.private_key(0));
}

TEST(Keystore, MemberKeysAreIdenticalAcrossIndependentDirectories) {
  const std::vector<gcs::DaemonId> daemons = {0, 1, 2};
  cliques::KeyDirectory a(crypto::DhGroup::tiny64());
  cliques::KeyDirectory b(crypto::DhGroup::tiny64());
  netd::provision_member_keys(a, daemons, 2, 0x5353);
  netd::provision_member_keys(b, {1, 2, 0}, 2, 0x5353);
  for (gcs::DaemonId d : daemons) {
    for (std::uint32_t cidx = 1; cidx <= 2; ++cidx) {
      const gcs::MemberId m{d, cidx};
      EXPECT_EQ(a.public_key(m), b.public_key(m)) << m.to_string();
    }
  }
}

TEST(ClientWire, MessageAndViewRoundTrip) {
  gcs::Message msg;
  msg.group = "ops";
  msg.sender = gcs::MemberId{2, 7};
  msg.service = gcs::ServiceType::kAgreed;
  msg.msg_type = -17;
  msg.payload = util::SharedBytes(util::bytes_of("sealed"));
  msg.view_id = gcs::GroupViewId{gcs::ViewId{9, 1}, 4};
  util::Bytes framed = netd::wire::encode_message(msg);
  auto body = netd::wire::next_frame(framed);
  ASSERT_TRUE(body.has_value());
  EXPECT_TRUE(framed.empty());
  util::Reader r(*body);
  ASSERT_EQ(netd::wire::peek_op(r), netd::wire::Op::kMessage);
  const gcs::Message back = netd::wire::decode_message(r);
  r.expect_done();
  EXPECT_EQ(back.group, msg.group);
  EXPECT_EQ(back.sender, msg.sender);
  EXPECT_EQ(back.service, msg.service);
  EXPECT_EQ(back.msg_type, msg.msg_type);
  EXPECT_EQ(back.payload, msg.payload);
  EXPECT_EQ(back.view_id, msg.view_id);

  gcs::GroupView view;
  view.group = "ops";
  view.view_id = gcs::GroupViewId{gcs::ViewId{3, 0}, 2};
  view.reason = gcs::MembershipReason::kDisconnect;
  view.members = {gcs::MemberId{0, 1}, gcs::MemberId{1, 1}};
  view.joined = {gcs::MemberId{1, 1}};
  view.left = {gcs::MemberId{2, 1}};
  view.transitional = {gcs::MemberId{0, 1}};
  util::Bytes vframed = netd::wire::encode_view(view);
  auto vbody = netd::wire::next_frame(vframed);
  ASSERT_TRUE(vbody.has_value());
  util::Reader vr(*vbody);
  ASSERT_EQ(netd::wire::peek_op(vr), netd::wire::Op::kView);
  const gcs::GroupView vback = netd::wire::decode_view(vr);
  vr.expect_done();
  EXPECT_EQ(vback.view_id, view.view_id);
  EXPECT_EQ(vback.reason, view.reason);
  EXPECT_EQ(vback.members, view.members);
  EXPECT_EQ(vback.joined, view.joined);
  EXPECT_EQ(vback.left, view.left);
  EXPECT_EQ(vback.transitional, view.transitional);
}

TEST(ClientWire, OversizedPrefixThrowsInsteadOfAllocating) {
  util::Bytes buf = {0x7f, 0xff, 0xff, 0xff};
  EXPECT_THROW(netd::wire::next_frame(buf), util::SerialError);
}

TEST(ClientWire, CorruptViewMemberCountThrowsInsteadOfAllocating) {
  // A kView body whose member count claims 2^32-1 entries with no bytes
  // behind it must fail bounds-checked, not pre-allocate gigabytes.
  util::Writer w;
  w.u8(static_cast<std::uint8_t>(netd::wire::Op::kView));
  w.str("ops");
  gcs::GroupViewId{gcs::ViewId{3, 0}, 2}.encode(w);
  w.u8(static_cast<std::uint8_t>(gcs::MembershipReason::kDisconnect));
  w.u32(0xffffffffu);
  util::Bytes body = w.take();
  util::Reader r(body);
  ASSERT_EQ(netd::wire::peek_op(r), netd::wire::Op::kView);
  EXPECT_THROW(netd::wire::decode_view(r), util::SerialError);
}

// --- live gate + client -----------------------------------------------------

class GateFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    netd::ClusterConf conf =
        netd::parse_cluster_conf("daemon 0 127.0.0.1:0\nheartbeat_ms 50\nfail_timeout_ms 2000\n",
                                 "gate-test.conf");
    host_ = std::make_unique<netd::DaemonHost>(std::move(conf), 0, netd::DaemonHost::Options{});
    host_->start();
    gate_ = std::make_unique<netd::ClientGate>(*host_);
    gate_ep_ = gate_->start(0);
  }

  void TearDown() override {
    gate_->stop();
    host_->stop();
  }

  /// Drains events until pred says done; returns false on timeout.
  static bool pump(netd::Client& c, const std::function<bool(const netd::Client::Event&)>& pred,
                   int max_events = 50) {
    for (int i = 0; i < max_events; ++i) {
      auto ev = c.next_event(std::chrono::milliseconds(2000));
      if (!ev) return false;
      if (pred(*ev)) return true;
    }
    return false;
  }

  std::unique_ptr<netd::DaemonHost> host_;
  std::unique_ptr<netd::ClientGate> gate_;
  net::Endpoint gate_ep_;
};

TEST_F(GateFixture, TwoClientsJoinExchangeAndLeave) {
  netd::Client a, b;
  a.connect(gate_ep_);
  b.connect(gate_ep_);
  EXPECT_NE(a.id(), b.id());
  EXPECT_EQ(a.id().daemon, 0u);

  a.join("chat");
  ASSERT_TRUE(pump(a, [&](const netd::Client::Event& ev) {
    return ev.kind == netd::Client::Event::Kind::kView && ev.view.members.size() == 1;
  }));
  b.join("chat");
  ASSERT_TRUE(pump(a, [&](const netd::Client::Event& ev) {
    return ev.kind == netd::Client::Event::Kind::kView && ev.view.members.size() == 2;
  }));
  ASSERT_TRUE(pump(b, [&](const netd::Client::Event& ev) {
    return ev.kind == netd::Client::Event::Kind::kView && ev.view.members.size() == 2;
  }));

  a.multicast(gcs::ServiceType::kFifo, "chat", 7, util::bytes_of("over tcp"));
  gcs::Message got;
  ASSERT_TRUE(pump(b, [&](const netd::Client::Event& ev) {
    if (ev.kind != netd::Client::Event::Kind::kMessage) return false;
    got = ev.message;
    return true;
  }));
  EXPECT_EQ(got.sender, a.id());
  EXPECT_EQ(got.msg_type, 7);
  EXPECT_EQ(util::string_of(got.payload), "over tcp");

  // Graceful leave: the survivor sees a kLeave view back to one member.
  b.disconnect();
  ASSERT_TRUE(pump(a, [&](const netd::Client::Event& ev) {
    return ev.kind == netd::Client::Event::Kind::kView && ev.view.members.size() == 1 &&
           ev.view.reason == gcs::MembershipReason::kLeave;
  }));
}

TEST_F(GateFixture, DroppedConnectionSurfacesAsDisconnect) {
  netd::Client a, b;
  a.connect(gate_ep_);
  b.connect(gate_ep_);
  a.join("chat");
  b.join("chat");
  ASSERT_TRUE(pump(a, [&](const netd::Client::Event& ev) {
    return ev.kind == netd::Client::Event::Kind::kView && ev.view.members.size() == 2;
  }));
  // Simulate a client crash: close the socket without a goodbye. The
  // daemon must report a Disconnect (not a Leave) to survivors.
  b.kill();
  ASSERT_TRUE(pump(a, [&](const netd::Client::Event& ev) {
    return ev.kind == netd::Client::Event::Kind::kView && ev.view.members.size() == 1 &&
           ev.view.reason == gcs::MembershipReason::kDisconnect;
  }));
}

}  // namespace
