#include "crypto/bignum.h"

#include <gtest/gtest.h>

#include "crypto/drbg.h"
#include "crypto/exp_counter.h"

namespace ss::crypto {
namespace {

TEST(Bignum, DefaultIsZero) {
  Bignum z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_hex(), "0");
  EXPECT_TRUE(z.to_bytes().empty());
}

TEST(Bignum, U64Construction) {
  EXPECT_EQ(Bignum(0).to_hex(), "0");
  EXPECT_EQ(Bignum(1).to_hex(), "1");
  EXPECT_EQ(Bignum(0xDEADBEEFu).to_hex(), "deadbeef");
  EXPECT_EQ(Bignum(0x123456789ABCDEF0ULL).to_hex(), "123456789abcdef0");
  EXPECT_EQ(Bignum(~0ULL).to_hex(), "ffffffffffffffff");
}

TEST(Bignum, HexRoundTrip) {
  const char* cases[] = {"1", "ff", "100", "deadbeefcafebabe",
                         "123456789abcdef0123456789abcdef0123456789abcdef"};
  for (const char* c : cases) {
    EXPECT_EQ(Bignum::from_hex(c).to_hex(), c);
  }
  // Leading zeros are normalized away.
  EXPECT_EQ(Bignum::from_hex("000000ff").to_hex(), "ff");
  EXPECT_EQ(Bignum::from_hex("").to_hex(), "0");
}

TEST(Bignum, FromHexRejectsGarbage) {
  EXPECT_THROW(Bignum::from_hex("xyz"), std::invalid_argument);
  EXPECT_THROW(Bignum::from_hex("12 34"), std::invalid_argument);
}

TEST(Bignum, BytesRoundTrip) {
  util::Bytes b = {0x01, 0x02, 0x03, 0x04, 0x05};
  Bignum v = Bignum::from_bytes(b);
  EXPECT_EQ(v.to_hex(), "102030405");
  EXPECT_EQ(v.to_bytes(), b);
  // Leading zero bytes are accepted and dropped on export.
  util::Bytes padded = {0x00, 0x00, 0x01, 0x02, 0x03, 0x04, 0x05};
  EXPECT_EQ(Bignum::from_bytes(padded), v);
  EXPECT_EQ(v.to_bytes_padded(7), padded);
  EXPECT_THROW(v.to_bytes_padded(4), std::length_error);
}

TEST(Bignum, Comparisons) {
  EXPECT_LT(Bignum(1), Bignum(2));
  EXPECT_GT(Bignum::from_hex("100000000"), Bignum::from_hex("ffffffff"));
  EXPECT_EQ(Bignum(42), Bignum(42));
  EXPECT_LT(Bignum(), Bignum(1));
}

TEST(Bignum, AdditionCarries) {
  EXPECT_EQ(Bignum::from_hex("ffffffff") + Bignum(1), Bignum::from_hex("100000000"));
  EXPECT_EQ(Bignum::from_hex("ffffffffffffffffffffffff") + Bignum(1),
            Bignum::from_hex("1000000000000000000000000"));
  EXPECT_EQ(Bignum() + Bignum(), Bignum());
}

TEST(Bignum, SubtractionBorrows) {
  EXPECT_EQ(Bignum::from_hex("100000000") - Bignum(1), Bignum::from_hex("ffffffff"));
  EXPECT_EQ(Bignum(5) - Bignum(5), Bignum());
  EXPECT_THROW(Bignum(1) - Bignum(2), std::domain_error);
}

TEST(Bignum, Multiplication) {
  EXPECT_EQ(Bignum(0) * Bignum(12345), Bignum());
  EXPECT_EQ(Bignum::from_hex("ffffffff") * Bignum::from_hex("ffffffff"),
            Bignum::from_hex("fffffffe00000001"));
  EXPECT_EQ(Bignum::from_hex("ffffffffffffffff") * Bignum::from_hex("ffffffffffffffff"),
            Bignum::from_hex("fffffffffffffffe0000000000000001"));
}

TEST(Bignum, Shifts) {
  EXPECT_EQ(Bignum(1) << 0, Bignum(1));
  EXPECT_EQ((Bignum(1) << 100).to_hex(), "10000000000000000000000000");
  EXPECT_EQ((Bignum(1) << 100) >> 100, Bignum(1));
  EXPECT_EQ(Bignum::from_hex("deadbeef") >> 16, Bignum::from_hex("dead"));
  EXPECT_EQ(Bignum(1) >> 1, Bignum());
  EXPECT_EQ(Bignum() << 64, Bignum());
}

TEST(Bignum, BitAccess) {
  Bignum v = Bignum::from_hex("8000000000000001");
  EXPECT_TRUE(v.bit(0));
  EXPECT_TRUE(v.bit(63));
  EXPECT_FALSE(v.bit(1));
  EXPECT_FALSE(v.bit(64));  // out of range reads 0
  EXPECT_EQ(v.bit_length(), 64u);
}

TEST(Bignum, DivmodBasics) {
  auto [q, r] = Bignum::divmod(Bignum(100), Bignum(7));
  EXPECT_EQ(q, Bignum(14));
  EXPECT_EQ(r, Bignum(2));
  EXPECT_THROW(Bignum::divmod(Bignum(1), Bignum()), std::domain_error);
  // a < b
  auto [q2, r2] = Bignum::divmod(Bignum(3), Bignum(7));
  EXPECT_EQ(q2, Bignum());
  EXPECT_EQ(r2, Bignum(3));
}

TEST(Bignum, DivmodKnuthAddBackStress) {
  // Divisors with a maximal top limb push Knuth D through its q_hat
  // correction paths.
  Bignum a = Bignum::from_hex("ffffffffffffffffffffffffffffffff00000000000000000000000000000000");
  Bignum b = Bignum::from_hex("ffffffffffffffffffffffffffffffff");
  auto [q, r] = Bignum::divmod(a, b);
  EXPECT_EQ(q * b + r, a);
  EXPECT_LT(r, b);
}

class BignumRandomized : public ::testing::TestWithParam<int> {};

TEST_P(BignumRandomized, DivmodInvariant) {
  HmacDrbg rnd(static_cast<std::uint64_t>(GetParam()), "divmod");
  for (int i = 0; i < 50; ++i) {
    const std::size_t abits = 32 + static_cast<std::size_t>(GetParam()) * 61 % 700;
    const std::size_t bbits = 1 + (static_cast<std::size_t>(i) * 37) % (abits + 32);
    Bignum a = Bignum::random_below(Bignum(1) << abits, rnd);
    Bignum b = Bignum::random_below(Bignum(1) << bbits, rnd) + Bignum(1);
    auto [q, r] = Bignum::divmod(a, b);
    ASSERT_EQ(q * b + r, a) << "a=" << a.to_hex() << " b=" << b.to_hex();
    ASSERT_LT(r, b);
  }
}

TEST_P(BignumRandomized, AddSubInverse) {
  HmacDrbg rnd(static_cast<std::uint64_t>(GetParam()), "addsub");
  for (int i = 0; i < 50; ++i) {
    Bignum a = Bignum::random_below(Bignum(1) << 300, rnd);
    Bignum b = Bignum::random_below(Bignum(1) << 300, rnd);
    ASSERT_EQ((a + b) - b, a);
    ASSERT_EQ((a + b) - a, b);
  }
}

TEST_P(BignumRandomized, MulCommutesAndDistributes) {
  HmacDrbg rnd(static_cast<std::uint64_t>(GetParam()), "mul");
  for (int i = 0; i < 20; ++i) {
    Bignum a = Bignum::random_below(Bignum(1) << 200, rnd);
    Bignum b = Bignum::random_below(Bignum(1) << 150, rnd);
    Bignum c = Bignum::random_below(Bignum(1) << 100, rnd);
    ASSERT_EQ(a * b, b * a);
    ASSERT_EQ(a * (b + c), a * b + a * c);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BignumRandomized, ::testing::Range(0, 8));

struct ModExpVector {
  const char* base;
  const char* exp;
  const char* mod;
  const char* expected;
};

class ModExpKat : public ::testing::TestWithParam<ModExpVector> {};

TEST_P(ModExpKat, MatchesReference) {
  const auto& v = GetParam();
  EXPECT_EQ(Bignum::mod_exp(Bignum::from_hex(v.base), Bignum::from_hex(v.exp),
                            Bignum::from_hex(v.mod)),
            Bignum::from_hex(v.expected));
}

// Reference values computed with an independent implementation (CPython pow).
INSTANTIATE_TEST_SUITE_P(
    Reference, ModExpKat,
    ::testing::Values(
        ModExpVector{"1de9ea6670d3da1f", "17346b4501eaf614", "c735df5ef7697fb9",
                     "3856b6977308bfa2"},
        ModExpVector{"4b296c4a5bf7d7cdfb853e4da792b2ef8c31b06ad3c4296427e83aaa2c474155",
                     "76ab14759da618fd7bf78a4d9f8f5ffba5f80a0a58994953040e1e30c9ed0248",
                     "b16e2d5cabeb959208f0ebd4950cddd9ce97b5bdf073eed1f149f542e935b871",
                     "76429c59f5242ce2350b7ee13778e9901b2ea7b8bc1df7eaef7fa165c94cf72a"},
        ModExpVector{
            "d9a54a0d7b25331f4d6bfd8fa506bfc51025dbe58e725d57d30aad4b45038e220bc4621b9439852083d9"
            "fca716c40a33acd51e6699f9823c118dc10e774520d7",
            "5560eaba017ad051121213ca8212f7c6f1048aa604f0d0f2aa58695187b8a518e065e3eb74113cb03335"
            "4fc7eefadf23a7cda6c23fc86ee6443658625af0f3e0",
            "e98d7c358a84c15caad14268108727563ff4bb8cf703c9ffe16682717c9bbfae80ca17b703be0e66d868"
            "c2cf1d4a2b12b6a20bb02edf0743175e99412607ad5f",
            "8dca9da79c68e2a1afba65f66eb7f9d63c3536302895f3c6c9aa1c96b946c7bec29de323e6246cfc5cda"
            "6c87d52ea174d50a6233ccaea05e89c0e2e4feb20c57"},
        ModExpVector{
            "317ecb9ea211c92781f117349ad31e3c2dbd04d2c71ae94b6a820b222a5ac31943306890a443fed48401"
            "616684dd4d335b7370f60ba4c7993c93c7936786ce0d77fe906f349197da8c9604a3d42fba9e7cdf714b"
            "e086f9eaf7c9a0ff3f11801fb3f3a36019b24124ae33c17b93ce996ba4964accae86bf7b8fc8ce1a0898"
            "589a",
            "f6a11b92cf58440cb33bfa31b3e174eb1bb039fa5868c99b31007342a41b657a4166c3fba8094805d117"
            "76a4d15703e0607741867c362491d72f9ecdd454f1e81a644d9287a0eabff0689ae11e956a7dc4e14589"
            "6fa19d466a94427d2f84ea0fc7154f271fb661b44669165f4bb19d02701861c0d092e07f84eb1e73c7f3"
            "c8a0",
            "8a4adb41ce779a93a99226f446db4bc46a8f69260a228ba87442a1244e2e3761aba601ca242780aa8799"
            "51fff4f991a81c63373ac55ef18658a295d4eff35b6106f1e77124ed49b137106d208ead31c813484861"
            "29fc1d9d7f1ff9fe966844aa138411eb0dde6d082ac7e1da6099d795a8486261790b2f7cb5c36ec124ce"
            "01e1",
            "3f818c9f22904ab28365238cbc4d1cc6bde391798bb5ab91a245ade7e15895ea2559bec824eb4af8bde2"
            "116eaac5387de73142a56594559cda79011b7fba60c5c97609c962074bf548c8f9806da130ed5dc8c041"
            "50468f7a241c2bb6893a8b40c8fd424d02871d4d3dd9ae10c4fe55fea8c4d38dc071819060261688b638"
            "85f8"}));

TEST(ModExp, EdgeCases) {
  const Bignum p = Bignum::from_hex("c735df5ef7697fb9");  // odd modulus
  EXPECT_EQ(Bignum::mod_exp(Bignum(5), Bignum(), p), Bignum(1));  // e = 0
  EXPECT_EQ(Bignum::mod_exp(Bignum(), Bignum(10), p), Bignum());  // base = 0
  EXPECT_EQ(Bignum::mod_exp(Bignum(5), Bignum(1), p), Bignum(5));
  EXPECT_EQ(Bignum::mod_exp(Bignum(7), Bignum(3), Bignum(1)), Bignum());  // mod 1
  EXPECT_THROW(Bignum::mod_exp(Bignum(2), Bignum(2), Bignum()), std::domain_error);
}

TEST(ModExp, EvenModulusFallback) {
  // The generic path (even modulus) must agree with reference arithmetic:
  // 3^10 = 59049, 59049 mod 1024 = 681.
  EXPECT_EQ(Bignum::mod_exp(Bignum(3), Bignum(10), Bignum(1024)), Bignum(681));
}

TEST(ModExp, HomomorphicProperty) {
  HmacDrbg rnd(99, "homomorphic");
  const Bignum p = Bignum::from_hex(
      "e98d7c358a84c15caad14268108727563ff4bb8cf703c9ffe16682717c9bbfae80ca17b703be0e66d868c2cf"
      "1d4a2b12b6a20bb02edf0743175e99412607ad5f");
  for (int i = 0; i < 10; ++i) {
    Bignum g = Bignum::random_below(p, rnd);
    Bignum a = Bignum::random_below(Bignum(1) << 128, rnd);
    Bignum b = Bignum::random_below(Bignum(1) << 128, rnd);
    ASSERT_EQ(Bignum::mod_exp(g, a + b, p),
              Bignum::mod_mul(Bignum::mod_exp(g, a, p), Bignum::mod_exp(g, b, p), p));
  }
}

TEST(ModExp, MontgomeryMatchesGenericPath) {
  // Force the generic path by multiplying an odd modulus by 2, then compare
  // residues mod the odd part via CRT-free check: compute both ways mod odd m.
  HmacDrbg rnd(7, "mont-vs-generic");
  const Bignum m = Bignum::from_hex("b16e2d5cabeb959208f0ebd4950cddd9ce97b5bdf073eed1f149f542e935b871");
  for (int i = 0; i < 10; ++i) {
    Bignum b = Bignum::random_below(m, rnd);
    Bignum e = Bignum::random_below(Bignum(1) << 96, rnd);
    // Naive square-and-multiply oracle.
    Bignum acc(1);
    for (std::size_t bit = e.bit_length(); bit-- > 0;) {
      acc = (acc * acc) % m;
      if (e.bit(bit)) acc = (acc * b) % m;
    }
    ASSERT_EQ(Bignum::mod_exp(b, e, m), acc);
  }
}

TEST(ModInverse, PrimeModulus) {
  const Bignum p(101);
  for (std::uint64_t a = 1; a < 101; ++a) {
    Bignum inv = Bignum::mod_inverse_prime(Bignum(a), p);
    EXPECT_EQ(Bignum::mod_mul(Bignum(a), inv, p), Bignum(1));
  }
  EXPECT_THROW(Bignum::mod_inverse_prime(Bignum(3), Bignum(4)), std::domain_error);
}

TEST(RandomBelow, RespectsBound) {
  HmacDrbg rnd(5, "bounds");
  const Bignum bound = Bignum::from_hex("10000000001");
  for (int i = 0; i < 200; ++i) {
    ASSERT_LT(Bignum::random_below(bound, rnd), bound);
  }
  EXPECT_THROW(Bignum::random_below(Bignum(), rnd), std::domain_error);
}

TEST(RandomUnit, NeverZero) {
  HmacDrbg rnd(6, "unit");
  const Bignum bound(3);
  for (int i = 0; i < 50; ++i) {
    Bignum v = Bignum::random_unit(bound, rnd);
    ASSERT_FALSE(v.is_zero());
    ASSERT_LT(v, bound);
  }
}

TEST(Primality, KnownPrimes) {
  HmacDrbg rnd(1, "prime");
  EXPECT_TRUE(Bignum::is_probable_prime(Bignum(2), 10, rnd));
  EXPECT_TRUE(Bignum::is_probable_prime(Bignum(3), 10, rnd));
  EXPECT_TRUE(Bignum::is_probable_prime(Bignum(65537), 10, rnd));
  EXPECT_TRUE(Bignum::is_probable_prime(Bignum(0xFFFFFFFFFFFFFA43ULL), 10, rnd));  // tiny64 p
  // 2^192 - 2^64 - 1 (the NIST P-192 field prime).
  EXPECT_TRUE(Bignum::is_probable_prime(
      Bignum::from_hex("fffffffffffffffffffffffffffffffeffffffffffffffff"), 10, rnd));
}

TEST(Primality, KnownComposites) {
  HmacDrbg rnd(2, "composite");
  EXPECT_FALSE(Bignum::is_probable_prime(Bignum(1), 10, rnd));
  EXPECT_FALSE(Bignum::is_probable_prime(Bignum(), 10, rnd));
  EXPECT_FALSE(Bignum::is_probable_prime(Bignum(561), 10, rnd));    // Carmichael
  EXPECT_FALSE(Bignum::is_probable_prime(Bignum(62745), 10, rnd));  // Carmichael
  EXPECT_FALSE(Bignum::is_probable_prime(Bignum(65536), 10, rnd));
  // Product of two 32-bit primes.
  EXPECT_FALSE(Bignum::is_probable_prime(Bignum(4294967291ULL) * Bignum(4294967279ULL), 10, rnd));
}

TEST(ExpCounterTest, CountsAndLabelsExponentiations) {
  reset_exp_tally();
  const Bignum p = Bignum::from_hex("c735df5ef7697fb9");
  Bignum::mod_exp(Bignum(2), Bignum(100), p);
  {
    ExpPurposeScope scope(ExpPurpose::kSessionKey);
    Bignum::mod_exp(Bignum(2), Bignum(100), p);
    Bignum::mod_exp(Bignum(3), Bignum(100), p);
  }
  const ExpTally t = exp_tally();
  EXPECT_EQ(t.total(), 3u);
  EXPECT_EQ(t.count(ExpPurpose::kUnspecified), 1u);
  EXPECT_EQ(t.count(ExpPurpose::kSessionKey), 2u);
  reset_exp_tally();
  EXPECT_EQ(exp_tally().total(), 0u);
}

TEST(ExpCounterTest, ScopesNest) {
  reset_exp_tally();
  const Bignum p = Bignum::from_hex("c735df5ef7697fb9");
  {
    ExpPurposeScope outer(ExpPurpose::kLongTermKey);
    Bignum::mod_exp(Bignum(2), Bignum(3), p);
    {
      ExpPurposeScope inner(ExpPurpose::kSessionKey);
      Bignum::mod_exp(Bignum(2), Bignum(3), p);
    }
    Bignum::mod_exp(Bignum(2), Bignum(3), p);
  }
  const ExpTally t = exp_tally();
  EXPECT_EQ(t.count(ExpPurpose::kLongTermKey), 2u);
  EXPECT_EQ(t.count(ExpPurpose::kSessionKey), 1u);
  reset_exp_tally();
}

}  // namespace
}  // namespace ss::crypto
