// Tests for the View Synchrony (flush) layer.
#include "flush/flush.h"

#include <gtest/gtest.h>

#include "tests/cluster_fixture.h"

namespace ss::flush {
namespace {

using gcs::GroupName;
using gcs::GroupView;
using gcs::Message;
using gcs::ServiceType;
using testing::Cluster;
using util::bytes_of;
using util::string_of;

/// Records everything a FlushMailbox delivers; auto-acks flush requests
/// unless told otherwise.
class VsClient {
 public:
  explicit VsClient(gcs::Daemon& d, bool auto_flush = true) : fm(d), auto_flush_(auto_flush) {
    fm.on_message([this](const Message& m) { messages.push_back(m); });
    fm.on_view([this](const GroupView& v) { views.push_back(v); });
    fm.on_flush_request([this](const GroupName& g) {
      flush_requests.push_back(g);
      if (auto_flush_) fm.flush_ok(g);
    });
  }

  const GroupView* last_view(const GroupName& g) const {
    for (auto it = views.rbegin(); it != views.rend(); ++it) {
      if (it->group == g) return &*it;
    }
    return nullptr;
  }

  std::vector<std::string> payloads(const GroupName& g) const {
    std::vector<std::string> out;
    for (const auto& m : messages) {
      if (m.group == g) out.push_back(string_of(m.payload));
    }
    return out;
  }

  FlushMailbox fm;
  bool auto_flush_;
  std::vector<Message> messages;
  std::vector<GroupView> views;
  std::vector<GroupName> flush_requests;
};

class FlushFixture : public ::testing::Test {
 protected:
  FlushFixture() : c(3) { EXPECT_TRUE(c.converge(3)); }

  bool wait_view(VsClient& cl, const GroupName& g, std::size_t members,
                 sim::Time t = sim::kSecond) {
    return c.run_until(
        [&] {
          const auto* v = cl.last_view(g);
          return v != nullptr && v->members.size() == members;
        },
        t);
  }

  Cluster c;
};

TEST_F(FlushFixture, FirstJoinerInstallsView) {
  VsClient a(*c.daemons[0]);
  a.fm.join("g");
  ASSERT_TRUE(wait_view(a, "g", 1));
  EXPECT_FALSE(a.fm.flushing("g"));
  // Joiner auto-acks: no flush request surfaced to the app.
  EXPECT_TRUE(a.flush_requests.empty());
}

TEST_F(FlushFixture, SecondJoinTriggersFlushRound) {
  VsClient a(*c.daemons[0]);
  VsClient b(*c.daemons[1]);
  a.fm.join("g");
  ASSERT_TRUE(wait_view(a, "g", 1));
  b.fm.join("g");
  ASSERT_TRUE(wait_view(a, "g", 2));
  ASSERT_TRUE(wait_view(b, "g", 2));
  // The incumbent got a flush request; the joiner did not.
  EXPECT_EQ(a.flush_requests.size(), 1u);
  EXPECT_TRUE(b.flush_requests.empty());
  EXPECT_EQ(a.last_view("g")->view_id, b.last_view("g")->view_id);
}

TEST_F(FlushFixture, ViewWaitsForAllFlushOks) {
  VsClient b(*c.daemons[1], /*auto_flush=*/false);  // b withholds acks
  b.fm.join("g");
  ASSERT_TRUE(wait_view(b, "g", 1));  // joiner auto-acks its own join
  VsClient a(*c.daemons[0]);
  a.fm.join("g");
  // b, the incumbent, receives the flush request and sits on it.
  ASSERT_TRUE(c.run_until([&] { return !b.flush_requests.empty(); }, 2 * sim::kSecond));
  const std::size_t a_views = a.views.size();
  c.run_for(200 * sim::kMillisecond);
  // Nothing installs while b withholds the ack.
  EXPECT_EQ(a.views.size(), a_views);
  EXPECT_TRUE(b.fm.flushing("g"));
  b.fm.flush_ok(b.flush_requests.back());
  ASSERT_TRUE(wait_view(a, "g", 2));
  ASSERT_TRUE(wait_view(b, "g", 2));
}

TEST_F(FlushFixture, SendBlockedWhileFlushing) {
  VsClient a(*c.daemons[0]);
  VsClient b(*c.daemons[1], /*auto_flush=*/false);
  a.fm.join("g");
  ASSERT_TRUE(wait_view(a, "g", 1));
  EXPECT_TRUE(a.fm.send(ServiceType::kFifo, "g", bytes_of("ok")));
  b.fm.join("g");
  ASSERT_TRUE(c.run_until([&] { return a.fm.flushing("g"); }, 2 * sim::kSecond));
  EXPECT_FALSE(a.fm.send(ServiceType::kFifo, "g", bytes_of("blocked")));
  // b must ack (it auto-acks its own join internally; the flush round is for
  // a). Complete it.
  a.fm.flush_ok("g");
  ASSERT_TRUE(wait_view(a, "g", 2));
  EXPECT_TRUE(a.fm.send(ServiceType::kFifo, "g", bytes_of("ok2")));
}

TEST_F(FlushFixture, MessagesDeliveredInSendersView) {
  VsClient a(*c.daemons[0]);
  VsClient b(*c.daemons[1]);
  a.fm.join("g");
  b.fm.join("g");
  ASSERT_TRUE(wait_view(a, "g", 2));
  ASSERT_TRUE(wait_view(b, "g", 2));
  ASSERT_TRUE(a.fm.send(ServiceType::kAgreed, "g", bytes_of("hello")));
  ASSERT_TRUE(c.run_until([&] { return b.payloads("g").size() == 1; }));
  // Message view id matches the view both installed.
  EXPECT_EQ(b.messages.back().view_id, b.last_view("g")->view_id);
  EXPECT_EQ(b.payloads("g")[0], "hello");
  // Self delivery carries the same view.
  ASSERT_EQ(a.payloads("g").size(), 1u);
  EXPECT_EQ(a.messages.back().view_id, a.last_view("g")->view_id);
}

TEST_F(FlushFixture, SendBeforeFirstViewFails) {
  VsClient a(*c.daemons[0]);
  EXPECT_FALSE(a.fm.send(ServiceType::kFifo, "g", bytes_of("too early")));
}

TEST_F(FlushFixture, ReservedMsgTypeRejected) {
  VsClient a(*c.daemons[0]);
  a.fm.join("g");
  ASSERT_TRUE(wait_view(a, "g", 1));
  EXPECT_FALSE(a.fm.send(ServiceType::kFifo, "g", bytes_of("x"), kFlushOkType));
}

TEST_F(FlushFixture, LeaveDeliversSelfLeaveThroughFlush) {
  VsClient a(*c.daemons[0]);
  VsClient b(*c.daemons[1]);
  a.fm.join("g");
  b.fm.join("g");
  ASSERT_TRUE(wait_view(a, "g", 2));
  ASSERT_TRUE(wait_view(b, "g", 2));
  a.fm.leave("g");
  ASSERT_TRUE(c.run_until([&] {
    const auto* va = a.last_view("g");
    const auto* vb = b.last_view("g");
    return va != nullptr && va->reason == gcs::MembershipReason::kSelfLeave && vb != nullptr &&
           vb->members.size() == 1;
  }));
}

TEST_F(FlushFixture, PartitionDeliversFlushedNetworkView) {
  VsClient a(*c.daemons[0]);
  VsClient b(*c.daemons[1]);
  VsClient d(*c.daemons[2]);
  a.fm.join("g");
  b.fm.join("g");
  d.fm.join("g");
  ASSERT_TRUE(wait_view(a, "g", 3));
  ASSERT_TRUE(wait_view(b, "g", 3));
  ASSERT_TRUE(wait_view(d, "g", 3));
  c.net.partition({{0}, {1, 2}});
  ASSERT_TRUE(wait_view(a, "g", 1, 3 * sim::kSecond));
  ASSERT_TRUE(wait_view(b, "g", 2, 3 * sim::kSecond));
  ASSERT_TRUE(wait_view(d, "g", 2, 3 * sim::kSecond));
  EXPECT_EQ(a.last_view("g")->reason, gcs::MembershipReason::kNetwork);
  EXPECT_EQ(b.last_view("g")->view_id, d.last_view("g")->view_id);
  // Both sides operational again.
  EXPECT_TRUE(b.fm.send(ServiceType::kFifo, "g", bytes_of("side2")));
  ASSERT_TRUE(c.run_until([&] { return d.payloads("g").size() == 1; }));
}

TEST_F(FlushFixture, MergeAfterPartitionReunifies) {
  VsClient a(*c.daemons[0]);
  VsClient b(*c.daemons[1]);
  a.fm.join("g");
  b.fm.join("g");
  ASSERT_TRUE(wait_view(a, "g", 2));
  c.net.partition({{0}, {1, 2}});
  ASSERT_TRUE(wait_view(a, "g", 1, 3 * sim::kSecond));
  ASSERT_TRUE(wait_view(b, "g", 1, 3 * sim::kSecond));
  c.net.heal();
  ASSERT_TRUE(wait_view(a, "g", 2, 3 * sim::kSecond));
  ASSERT_TRUE(wait_view(b, "g", 2, 3 * sim::kSecond));
  EXPECT_EQ(a.last_view("g")->view_id, b.last_view("g")->view_id);
  // Post-merge traffic flows.
  EXPECT_TRUE(a.fm.send(ServiceType::kAgreed, "g", bytes_of("back together")));
  ASSERT_TRUE(c.run_until([&] { return b.payloads("g").size() == 1; }));
}

TEST_F(FlushFixture, NoOldViewMessageAfterNewViewInstalls) {
  // The VS property: once a member installs view V', it never again
  // receives a message sent in V. Exercise with traffic racing a join.
  VsClient a(*c.daemons[0]);
  VsClient b(*c.daemons[1]);
  VsClient d(*c.daemons[2]);
  a.fm.join("g");
  b.fm.join("g");
  ASSERT_TRUE(wait_view(a, "g", 2));
  ASSERT_TRUE(wait_view(b, "g", 2));
  // a sends a burst, then d joins concurrently.
  for (int i = 0; i < 5; ++i) a.fm.send(ServiceType::kFifo, "g", bytes_of("x"));
  d.fm.join("g");
  ASSERT_TRUE(wait_view(d, "g", 3, 3 * sim::kSecond));
  ASSERT_TRUE(wait_view(a, "g", 3, 3 * sim::kSecond));
  c.run_for(100 * sim::kMillisecond);
  // Verify per-receiver: view install position in the message stream is
  // consistent — every member delivered all 5 old-view messages before
  // installing the 3-member view (checked via recorded view ids).
  for (VsClient* cl : {&a, &b}) {
    const auto* v3 = cl->last_view("g");
    ASSERT_NE(v3, nullptr);
    for (const auto& m : cl->messages) {
      if (m.group != "g") continue;
      // No message may carry a view id newer than the receiver's view at
      // delivery; and old-view ids must all be the 2-member view.
      EXPECT_LE(m.view_id, v3->view_id);
    }
    EXPECT_EQ(cl->payloads("g").size(), 5u);
  }
  // The joiner must not have received any of the old-view burst.
  EXPECT_TRUE(d.payloads("g").empty());
}

TEST_F(FlushFixture, UnicastBypassesFlush) {
  VsClient a(*c.daemons[0]);
  VsClient b(*c.daemons[1]);
  a.fm.join("g");
  b.fm.join("g");
  ASSERT_TRUE(wait_view(b, "g", 2));
  a.fm.unicast(b.fm.id(), "g", bytes_of("direct"), 7);
  ASSERT_TRUE(c.run_until([&] {
    for (const auto& m : b.messages) {
      if (m.msg_type == 7) return true;
    }
    return false;
  }));
}

}  // namespace
}  // namespace ss::flush
