#include "crypto/blowfish.h"

#include <gtest/gtest.h>

#include "crypto/drbg.h"
#include "util/bytes.h"

namespace ss::crypto {
namespace {

using util::Bytes;
using util::bytes_of;
using util::from_hex;
using util::to_hex;

struct EcbVector {
  const char* key;
  const char* plain;
  const char* cipher;
};

class BlowfishEcbKat : public ::testing::TestWithParam<EcbVector> {};

TEST_P(BlowfishEcbKat, EncryptMatches) {
  const auto& v = GetParam();
  Blowfish bf(from_hex(v.key));
  Bytes in = from_hex(v.plain);
  std::uint8_t out[8];
  bf.encrypt_block(in.data(), out);
  EXPECT_EQ(to_hex(out, 8), v.cipher);
}

TEST_P(BlowfishEcbKat, DecryptInverts) {
  const auto& v = GetParam();
  Blowfish bf(from_hex(v.key));
  Bytes ct = from_hex(v.cipher);
  std::uint8_t out[8];
  bf.decrypt_block(ct.data(), out);
  EXPECT_EQ(to_hex(out, 8), v.plain);
}

// Eric Young's published Blowfish ECB test vectors (shipped with SSLeay /
// OpenSSL and linked from Schneier's Blowfish page). These transitively
// validate the pi spigot that generates the P-array and S-boxes.
INSTANTIATE_TEST_SUITE_P(
    Schneier, BlowfishEcbKat,
    ::testing::Values(EcbVector{"0000000000000000", "0000000000000000", "4ef997456198dd78"},
                      EcbVector{"ffffffffffffffff", "ffffffffffffffff", "51866fd5b85ecb8a"},
                      EcbVector{"3000000000000000", "1000000000000001", "7d856f9a613063f2"},
                      EcbVector{"1111111111111111", "1111111111111111", "2466dd878b963c9d"},
                      EcbVector{"0123456789abcdef", "1111111111111111", "61f9c3802281b096"},
                      EcbVector{"fedcba9876543210", "0123456789abcdef", "0aceab0fc6a0a28d"}));

TEST(BlowfishTest, KeySizeValidation) {
  EXPECT_THROW(Blowfish(Bytes(3, 0)), std::invalid_argument);
  EXPECT_THROW(Blowfish(Bytes(57, 0)), std::invalid_argument);
  EXPECT_NO_THROW(Blowfish(Bytes(4, 0)));
  EXPECT_NO_THROW(Blowfish(Bytes(56, 0)));
}

TEST(BlowfishTest, WordInterfaceRoundTrip) {
  Blowfish bf(bytes_of("roundtrip-key"));
  std::uint32_t l = 0x01234567, r = 0x89abcdef;
  bf.encrypt_block(l, r);
  EXPECT_FALSE(l == 0x01234567 && r == 0x89abcdef);
  bf.decrypt_block(l, r);
  EXPECT_EQ(l, 0x01234567u);
  EXPECT_EQ(r, 0x89abcdefu);
}

TEST(BlowfishTest, CbcRoundTripAllSizes) {
  Blowfish bf(bytes_of("cbc-key-material"));
  const Bytes iv = from_hex("0011223344556677");
  for (std::size_t n = 0; n <= 64; ++n) {
    Bytes pt(n);
    for (std::size_t i = 0; i < n; ++i) pt[i] = static_cast<std::uint8_t>(i * 7 + 3);
    Bytes ct = bf.encrypt_cbc(iv, pt);
    ASSERT_EQ(ct.size() % Blowfish::kBlockSize, 0u);
    ASSERT_GT(ct.size(), pt.size());  // always at least one padding byte
    ASSERT_EQ(bf.decrypt_cbc(iv, ct), pt) << "size " << n;
  }
}

TEST(BlowfishTest, CbcDifferentIvDifferentCiphertext) {
  Blowfish bf(bytes_of("some-key"));
  const Bytes pt = bytes_of("identical plaintext blocks here");
  Bytes c1 = bf.encrypt_cbc(from_hex("0000000000000000"), pt);
  Bytes c2 = bf.encrypt_cbc(from_hex("0000000000000001"), pt);
  EXPECT_NE(c1, c2);
}

TEST(BlowfishTest, CbcChainsAcrossBlocks) {
  // Two identical plaintext blocks must not produce identical ciphertext
  // blocks under CBC.
  Blowfish bf(bytes_of("chaining"));
  Bytes pt(16, 0x42);
  Bytes ct = bf.encrypt_cbc(from_hex("0102030405060708"), pt);
  EXPECT_NE(Bytes(ct.begin(), ct.begin() + 8), Bytes(ct.begin() + 8, ct.begin() + 16));
}

TEST(BlowfishTest, CbcRejectsCorruptPadding) {
  Blowfish bf(bytes_of("padding-key"));
  const Bytes iv = from_hex("8877665544332211");
  Bytes ct = bf.encrypt_cbc(iv, bytes_of("hello"));
  ct.back() ^= 0xFF;  // corrupt final block -> padding check must fail
  EXPECT_THROW(bf.decrypt_cbc(iv, ct), std::runtime_error);
}

TEST(BlowfishTest, CbcRejectsMisalignedCiphertext) {
  Blowfish bf(bytes_of("align-key"));
  const Bytes iv = from_hex("8877665544332211");
  EXPECT_THROW(bf.decrypt_cbc(iv, Bytes(7, 0)), std::runtime_error);
  EXPECT_THROW(bf.decrypt_cbc(iv, Bytes{}), std::runtime_error);
}

TEST(BlowfishTest, BadIvSizeRejected) {
  Blowfish bf(bytes_of("ivsz-key"));
  EXPECT_THROW(bf.encrypt_cbc(Bytes(7, 0), bytes_of("x")), std::invalid_argument);
  EXPECT_THROW(bf.decrypt_cbc(Bytes(9, 0), Bytes(8, 0)), std::invalid_argument);
}

TEST(BlowfishTest, DistinctKeysDistinctCiphertext) {
  const Bytes pt = bytes_of("same plaintext");
  const Bytes iv = from_hex("0000000000000000");
  Blowfish a(bytes_of("key-aaaa"));
  Blowfish b(bytes_of("key-bbbb"));
  EXPECT_NE(a.encrypt_cbc(iv, pt), b.encrypt_cbc(iv, pt));
}

}  // namespace
}  // namespace ss::crypto
