// Unit tests for the refcounted payload buffer (util/shared_bytes.h) and the
// scatter-gather Writer/Reader path (util/serial.h): lifetime, aliasing,
// secure_wipe on shared key material, and copy accounting via util/msgpath.h.
#include "util/shared_bytes.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <utility>

#include "util/msgpath.h"
#include "util/serial.h"

namespace ss::util {
namespace {

TEST(SharedBytesTest, EmptyByDefault) {
  SharedBytes s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.use_count(), 0);
  EXPECT_EQ(s, SharedBytes());
}

TEST(SharedBytesTest, AdoptsBytesAndReadsBack) {
  SharedBytes s{bytes_of("hello")};
  ASSERT_EQ(s.size(), 5u);
  EXPECT_EQ(string_of(s), "hello");
  EXPECT_EQ(s[0], 'h');
  EXPECT_EQ(s.to_bytes(), bytes_of("hello"));
}

TEST(SharedBytesTest, CopySharesTheBlockWithoutAllocating) {
  msgpath_reset();
  SharedBytes a{bytes_of("shared block")};
  EXPECT_EQ(msgpath().payload_allocs, 1u);
  SharedBytes b = a;            // refcount bump
  SharedBytes c = a.slice(7);   // view into the same block
  EXPECT_EQ(msgpath().payload_allocs, 1u);  // no new blocks
  EXPECT_EQ(msgpath().payload_copies, 0u);
  EXPECT_EQ(a.use_count(), 3);
  EXPECT_EQ(b.data(), a.data());
  EXPECT_EQ(c.data(), a.data() + 7);
  EXPECT_EQ(string_of(c), "block");
}

TEST(SharedBytesTest, AliasOutlivesSource) {
  SharedBytes tail;
  {
    SharedBytes whole{bytes_of("prefix-payload")};
    tail = whole.slice(7);
  }  // `whole` destroyed; the block must survive through `tail`
  EXPECT_EQ(string_of(tail), "payload");
  EXPECT_EQ(tail.use_count(), 1);
}

TEST(SharedBytesTest, SliceBoundsChecked) {
  SharedBytes s{bytes_of("0123456789")};
  EXPECT_EQ(string_of(s.slice(2, 3)), "234");
  EXPECT_EQ(s.slice(10).size(), 0u);  // empty tail is legal
  EXPECT_THROW(s.slice(11), std::out_of_range);
  EXPECT_THROW(s.slice(4, 7), std::out_of_range);
  // Slicing a slice stays bounds-checked against the view, not the block.
  SharedBytes mid = s.slice(2, 5);
  EXPECT_THROW(mid.slice(0, 6), std::out_of_range);
  EXPECT_EQ(string_of(mid.slice(1, 2)), "34");
}

TEST(SharedBytesTest, CopyOfMakesIndependentBlock) {
  msgpath_reset();
  Bytes src = bytes_of("key material");
  SharedBytes s = SharedBytes::copy_of(src);
  EXPECT_EQ(msgpath().payload_copies, 1u);
  EXPECT_EQ(msgpath().payload_bytes_copied, src.size());
  src[0] = 'X';  // mutating the source must not show through
  EXPECT_EQ(string_of(s), "key material");
}

TEST(SharedBytesTest, SecureWipeZeroizesAllAliases) {
  // The secure layer wipes key material on teardown; with shared buffers the
  // wipe must reach every alias in place (no copy can survive holding the
  // secret), then detach the wiped handle.
  SharedBytes key{bytes_of("super secret key")};
  SharedBytes alias = key;
  SharedBytes tail = key.slice(12);
  secure_wipe(key);
  EXPECT_TRUE(key.empty());  // wiped handle detaches
  ASSERT_EQ(alias.size(), 16u);
  for (std::uint8_t b : alias) EXPECT_EQ(b, 0u);
  for (std::uint8_t b : tail) EXPECT_EQ(b, 0u);
}

TEST(SharedBytesTest, EqualityComparesContents) {
  SharedBytes a{bytes_of("same")};
  SharedBytes b{bytes_of("same")};
  EXPECT_EQ(a, b);  // distinct blocks, equal bytes
  EXPECT_EQ(a, bytes_of("same"));
  EXPECT_EQ(bytes_of("same"), a);
  EXPECT_NE(a, bytes_of("diff"));
}

TEST(WriterScatterTest, ChainedPayloadMatchesLegacyEncoding) {
  // The scatter Writer must produce byte-identical output to inline writes:
  // the wire format is unchanged by this refactor.
  const SharedBytes payload{bytes_of("payload bytes")};
  Writer legacy;
  legacy.u32(7);
  legacy.str("hdr");
  legacy.bytes(payload.to_bytes());  // legacy: u32 length + inline copy
  Writer scatter;
  scatter.u32(7);
  scatter.str("hdr");
  scatter.payload(payload);  // zero-copy chain
  EXPECT_EQ(scatter.size(), legacy.size());
  EXPECT_EQ(scatter.take(), legacy.take());
}

TEST(WriterScatterTest, DataThrowsWhileChunksPending) {
  Writer w;
  w.u8(1);
  w.payload(SharedBytes{bytes_of("chained")});
  EXPECT_THROW(w.data(), SerialError);
  (void)w.take();  // gathering resolves the chunks
}

TEST(WriterScatterTest, TakeCountsGatherCopies) {
  msgpath_reset();
  const SharedBytes p{bytes_of("12345678")};
  msgpath_reset();  // ignore the alloc above
  Writer w;
  w.u8(0);
  w.payload(p);
  const Bytes flat = w.take();
  EXPECT_EQ(msgpath().payload_copies, 1u);  // the single sanctioned gather
  EXPECT_EQ(msgpath().payload_bytes_copied, p.size());
  EXPECT_EQ(flat.size(), 1 + 4 + p.size());
}

TEST(ReaderBackedTest, PayloadAliasesTheBackingBlock) {
  msgpath_reset();
  Writer w;
  w.u64(0xDEADBEEF);
  w.payload(SharedBytes{bytes_of("zero copy read")});
  const SharedBytes framed = w.take_shared();
  msgpath_reset();
  Reader r(framed);
  EXPECT_EQ(r.u64(), 0xDEADBEEFu);
  const SharedBytes out = r.payload();
  EXPECT_EQ(string_of(out), "zero copy read");
  // Backed reader: the payload is a slice of `framed`, not a copy.
  EXPECT_EQ(out.data(), framed.data() + 8 + 4);
  EXPECT_EQ(msgpath().payload_copies, 0u);
  EXPECT_EQ(msgpath().payload_allocs, 0u);
}

TEST(ReaderBackedTest, UnbackedReaderCopiesPayload) {
  Writer w;
  w.payload(SharedBytes{bytes_of("fallback")});
  const Bytes flat = w.take();
  msgpath_reset();
  Reader r(flat);  // Bytes-backed: cannot alias safely
  const SharedBytes out = r.payload();
  EXPECT_EQ(string_of(out), "fallback");
  EXPECT_EQ(msgpath().payload_copies, 1u);
}

TEST(ReaderBackedTest, PayloadBoundsChecked) {
  Writer w;
  w.u32(100);  // claims 100 payload bytes that are not there
  const SharedBytes framed{w.take()};
  Reader r(framed);
  EXPECT_THROW(r.payload(), SerialError);
}

}  // namespace
}  // namespace ss::util
