// Tests for the daemon-model group key (paper Sections 5 / 8): daemons
// agree on a shared key per daemon view, rekey only on daemon membership
// changes, and client-group churn does NOT touch it.
#include "gcs/daemon_key.h"

#include <gtest/gtest.h>

#include "secure/secure_client.h"
#include "tests/cluster_fixture.h"

namespace ss::gcs {
namespace {

using crypto::DhGroup;
using util::bytes_of;

struct KeyedStack {
  explicit KeyedStack(std::size_t n) : net(sched, 33), store(DhGroup::ss256()) {
    std::vector<DaemonId> ids;
    for (std::size_t i = 0; i < n; ++i) ids.push_back(static_cast<DaemonId>(i));
    for (DaemonId id : ids) {
      daemons.push_back(std::make_unique<Daemon>(ss::runtime::Env{&sched, &net, id}, ids, TimingConfig{}, 90 + id,
                                                 &store));
      net.add_node(daemons.back().get());
    }
    for (auto& d : daemons) d->start();
  }

  bool keyed(std::size_t members) {
    return sched.run_until_condition(
        [&] {
          util::Bytes ref;
          for (auto& d : daemons) {
            if (!d->running()) continue;
            if (!d->is_operational() || d->view_members().size() != members) return false;
            const util::Bytes k = d->daemon_group_key();
            if (k.empty()) return false;
            if (ref.empty()) {
              ref = k;
            } else if (k != ref) {
              return false;
            }
          }
          return true;
        },
        sched.now() + 10 * sim::kSecond);
  }

  sim::Scheduler sched;
  sim::SimNetwork net;
  DaemonKeyStore store;
  std::vector<std::unique_ptr<Daemon>> daemons;
};

TEST(DaemonKey, AllDaemonsShareOneKeyPerView) {
  KeyedStack s(3);
  ASSERT_TRUE(s.keyed(3));
  EXPECT_EQ(s.daemons[0]->daemon_group_key(), s.daemons[2]->daemon_group_key());
  EXPECT_EQ(s.daemons[0]->daemon_group_key().size(), 32u);
}

TEST(DaemonKey, RekeysOnDaemonMembershipChange) {
  KeyedStack s(3);
  ASSERT_TRUE(s.keyed(3));
  const util::Bytes before = s.daemons[0]->daemon_group_key();
  s.daemons[2]->crash();
  ASSERT_TRUE(s.keyed(2));
  EXPECT_NE(s.daemons[0]->daemon_group_key(), before);
  // The crashed daemon recovers: fresh view, fresh key, all agree again.
  s.net.recover(2);
  s.daemons[2]->start();
  ASSERT_TRUE(s.keyed(3));
  EXPECT_EQ(s.daemons[0]->daemon_group_key(), s.daemons[2]->daemon_group_key());
}

TEST(DaemonKey, PartitionGivesEachSideItsOwnKey) {
  KeyedStack s(4);
  ASSERT_TRUE(s.keyed(4));
  s.net.partition({{0, 1}, {2, 3}});
  ASSERT_TRUE(s.sched.run_until_condition(
      [&] {
        for (auto& d : s.daemons) {
          if (d->view_members().size() != 2 || d->daemon_group_key().empty()) return false;
        }
        // Both sides fully keyed (each side internally consistent).
        return s.daemons[0]->daemon_group_key() == s.daemons[1]->daemon_group_key() &&
               s.daemons[2]->daemon_group_key() == s.daemons[3]->daemon_group_key();
      },
      s.sched.now() + 10 * sim::kSecond));
  EXPECT_EQ(s.daemons[0]->daemon_group_key(), s.daemons[1]->daemon_group_key());
  EXPECT_EQ(s.daemons[2]->daemon_group_key(), s.daemons[3]->daemon_group_key());
  EXPECT_NE(s.daemons[0]->daemon_group_key(), s.daemons[2]->daemon_group_key());
  s.net.heal();
  ASSERT_TRUE(s.keyed(4));
}

TEST(DaemonKey, ClientChurnDoesNotRekeyDaemons) {
  // The paper's daemon-model argument: client join/leave storms leave the
  // daemon key untouched.
  KeyedStack s(3);
  ASSERT_TRUE(s.keyed(3));
  const util::Bytes key = s.daemons[0]->daemon_group_key();
  const std::uint64_t rekeys = s.daemons[0]->daemon_rekeys();

  for (int round = 0; round < 5; ++round) {
    testing::RecordingClient a(*s.daemons[0]);
    testing::RecordingClient b(*s.daemons[1]);
    a.mbox().join("churny");
    b.mbox().join("churny");
    s.sched.run_for(50 * sim::kMillisecond);
    a.mbox().leave("churny");
    b.mbox().leave("churny");
    s.sched.run_for(50 * sim::kMillisecond);
  }
  EXPECT_EQ(s.daemons[0]->daemon_group_key(), key);
  EXPECT_EQ(s.daemons[0]->daemon_rekeys(), rekeys);
}

TEST(DaemonKey, DistCodecRoundTrip) {
  const ViewId view{42, 3};
  const util::Bytes sealed = bytes_of("sealed key bytes");
  const auto [v, k] = DaemonKeyAgent::decode_dist(DaemonKeyAgent::encode_dist(view, sealed));
  EXPECT_EQ(v, view);
  EXPECT_EQ(k, sealed);
}

TEST(DaemonKey, NoKeyWithoutStore) {
  testing::Cluster c(2);
  ASSERT_TRUE(c.converge(2));
  EXPECT_TRUE(c.daemons[0]->daemon_group_key().empty());
  EXPECT_EQ(c.daemons[0]->daemon_rekeys(), 0u);
}

}  // namespace
}  // namespace ss::gcs
