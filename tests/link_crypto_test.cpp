// Tests for encrypted daemon-to-daemon links (paper Section 5: daemons must
// protect their ordering/membership traffic from network attackers).
#include "gcs/link_crypto.h"

#include <gtest/gtest.h>

#include "secure/secure_client.h"
#include "tests/cluster_fixture.h"

namespace ss::gcs {
namespace {

using crypto::DhGroup;
using util::Bytes;
using util::bytes_of;

TEST(LinkCryptoUnit, SealOpenRoundTrip) {
  DaemonKeyStore store(DhGroup::ss256());
  crypto::HmacDrbg rnd(1, "lc");
  store.provision(0, rnd);
  store.provision(1, rnd);
  LinkCrypto a(store, 0, 11);
  LinkCrypto b(store, 1, 22);
  const Bytes frame = bytes_of("a daemon protocol frame");
  const Bytes sealed = a.seal(1, frame);
  EXPECT_NE(sealed, frame);
  EXPECT_EQ(b.open(0, sealed), frame);
}

TEST(LinkCryptoUnit, PairwiseKeysAreDirectional) {
  DaemonKeyStore store(DhGroup::ss256());
  crypto::HmacDrbg rnd(2, "lc");
  for (DaemonId d : {0u, 1u, 2u}) store.provision(d, rnd);
  LinkCrypto a(store, 0, 1);
  LinkCrypto b(store, 1, 2);
  LinkCrypto c(store, 2, 3);
  // A frame sealed for daemon 1 cannot be opened by daemon 2.
  const Bytes sealed = a.seal(1, bytes_of("for b only"));
  EXPECT_THROW(c.open(0, sealed), std::runtime_error);
  EXPECT_EQ(b.open(0, sealed), bytes_of("for b only"));
}

TEST(LinkCryptoUnit, TamperRejected) {
  DaemonKeyStore store(DhGroup::ss256());
  crypto::HmacDrbg rnd(3, "lc");
  store.provision(0, rnd);
  store.provision(1, rnd);
  LinkCrypto a(store, 0, 1);
  LinkCrypto b(store, 1, 2);
  Bytes sealed = a.seal(1, bytes_of("payload"));
  sealed[sealed.size() / 2] ^= 0x40;
  EXPECT_THROW(b.open(0, sealed), std::runtime_error);
}

TEST(LinkCryptoUnit, UnprovisionedPeerRejected) {
  DaemonKeyStore store(DhGroup::ss256());
  crypto::HmacDrbg rnd(4, "lc");
  store.provision(0, rnd);
  LinkCrypto a(store, 0, 1);
  EXPECT_THROW(a.seal(9, bytes_of("x")), std::out_of_range);
  EXPECT_THROW(LinkCrypto(store, 5, 1), std::logic_error);
}

// --- full stack over encrypted links -----------------------------------------

struct SecureLinkStack {
  SecureLinkStack() : net(sched, 21), store(DhGroup::ss256()) {
    std::vector<DaemonId> ids = {0, 1, 2};
    for (DaemonId id : ids) {
      daemons.push_back(std::make_unique<Daemon>(ss::runtime::Env{&sched, &net, id}, ids, TimingConfig{}, 60 + id,
                                                 &store));
      net.add_node(daemons.back().get());
    }
    for (auto& d : daemons) d->start();
  }

  bool converge() {
    return sched.run_until_condition(
        [&] {
          for (auto& d : daemons) {
            if (!d->is_operational() || d->view_members().size() != 3) return false;
          }
          return true;
        },
        sched.now() + 10 * sim::kSecond);
  }

  sim::Scheduler sched;
  sim::SimNetwork net;
  DaemonKeyStore store;
  std::vector<std::unique_ptr<Daemon>> daemons;
};

TEST(EncryptedLinks, DaemonsConvergeAndGroupsWork) {
  SecureLinkStack s;
  ASSERT_TRUE(s.converge());
  testing::RecordingClient a(*s.daemons[0]);
  testing::RecordingClient b(*s.daemons[2]);
  a.mbox().join("room");
  b.mbox().join("room");
  ASSERT_TRUE(s.sched.run_until_condition(
      [&] {
        const auto* v = b.last_view("room");
        return v != nullptr && v->members.size() == 2;
      },
      s.sched.now() + 5 * sim::kSecond));
  a.mbox().multicast(ServiceType::kAgreed, "room", bytes_of("over sealed links"));
  ASSERT_TRUE(s.sched.run_until_condition([&] { return !b.payloads("room").empty(); },
                                          s.sched.now() + 5 * sim::kSecond));
  EXPECT_EQ(b.payloads("room")[0], "over sealed links");
}

TEST(EncryptedLinks, WireCarriesNoPlaintext) {
  SecureLinkStack s;
  bool leaked = false;
  const Bytes marker = bytes_of("super-secret-group-name");
  s.net.set_tap([&](sim::NodeId, sim::NodeId, const Bytes& packet) {
    auto it = std::search(packet.begin(), packet.end(), marker.begin(), marker.end());
    if (it != packet.end()) leaked = true;
  });
  ASSERT_TRUE(s.converge());
  testing::RecordingClient a(*s.daemons[0]);
  testing::RecordingClient b(*s.daemons[1]);
  a.mbox().join("super-secret-group-name");
  b.mbox().join("super-secret-group-name");
  s.sched.run_for(500 * sim::kMillisecond);
  a.mbox().multicast(ServiceType::kFifo, "super-secret-group-name",
                     bytes_of("super-secret-group-name"));
  s.sched.run_for(500 * sim::kMillisecond);
  EXPECT_FALSE(b.payloads("super-secret-group-name").empty());
  EXPECT_FALSE(leaked) << "group name visible on the wire despite link encryption";
}

TEST(EncryptedLinks, PlainLinksDoLeak) {
  // Control experiment: without link crypto the group name IS on the wire.
  sim::Scheduler sched;
  sim::SimNetwork net(sched, 22);
  std::vector<DaemonId> ids = {0, 1};
  std::vector<std::unique_ptr<Daemon>> daemons;
  for (DaemonId id : ids) {
    daemons.push_back(std::make_unique<Daemon>(ss::runtime::Env{&sched, &net, id}, ids, TimingConfig{}, 80 + id));
    net.add_node(daemons.back().get());
  }
  bool seen = false;
  const Bytes marker = bytes_of("visible-group");
  net.set_tap([&](sim::NodeId, sim::NodeId, const Bytes& packet) {
    if (std::search(packet.begin(), packet.end(), marker.begin(), marker.end()) != packet.end()) {
      seen = true;
    }
  });
  for (auto& d : daemons) d->start();
  sched.run_until_condition(
      [&] { return daemons[0]->view_members().size() == 2; }, 10 * sim::kSecond);
  testing::RecordingClient a(*daemons[0]);
  testing::RecordingClient b(*daemons[1]);
  a.mbox().join("visible-group");
  b.mbox().join("visible-group");
  sched.run_for(500 * sim::kMillisecond);
  EXPECT_TRUE(seen);
}

TEST(EncryptedLinks, ForgedPacketsRejectedWithoutDisruption) {
  SecureLinkStack s;
  ASSERT_TRUE(s.converge());
  // An attacker node on the network blasts junk at daemon 0.
  struct Attacker : sim::NetNode {
    void on_packet(sim::NodeId, const util::Frame&) override {}
  } attacker;
  const sim::NodeId evil = s.net.add_node(&attacker);
  for (int i = 0; i < 50; ++i) {
    Bytes junk(64, static_cast<std::uint8_t>(i));
    s.net.send(evil, 0, junk);
  }
  s.sched.run_for(200 * sim::kMillisecond);
  EXPECT_GE(s.daemons[0]->link_frames_rejected(), 50u);
  // The cluster is unbothered.
  EXPECT_TRUE(s.daemons[0]->is_operational());
  EXPECT_EQ(s.daemons[0]->view_members().size(), 3u);
}

TEST(EncryptedLinks, SecureSpreadRunsOnTop) {
  // Defense in depth: client-layer Cliques over daemon-layer sealed links.
  SecureLinkStack s;
  ASSERT_TRUE(s.converge());
  cliques::KeyDirectory dir(DhGroup::tiny64());
  secure::SecureGroupClient a(*s.daemons[0], dir, 1);
  secure::SecureGroupClient b(*s.daemons[1], dir, 2);
  secure::SecureGroupConfig cfg;
  cfg.dh = &DhGroup::tiny64();
  a.join("g", cfg);
  b.join("g", cfg);
  ASSERT_TRUE(s.sched.run_until_condition(
      [&] { return a.has_key("g") && b.has_key("g"); }, s.sched.now() + 10 * sim::kSecond));
  int got = 0;
  b.on_message([&](const secure::SecureMessage&) { ++got; });
  a.send("g", bytes_of("doubly protected"));
  ASSERT_TRUE(s.sched.run_until_condition([&] { return got == 1; },
                                          s.sched.now() + 5 * sim::kSecond));
}

}  // namespace
}  // namespace ss::gcs
