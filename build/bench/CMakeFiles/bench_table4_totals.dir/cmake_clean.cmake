file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_totals.dir/bench_table4_totals.cpp.o"
  "CMakeFiles/bench_table4_totals.dir/bench_table4_totals.cpp.o.d"
  "bench_table4_totals"
  "bench_table4_totals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_totals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
