# Empty dependencies file for bench_table4_totals.
# This may be replaced when dependencies are built.
