file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_leave_exps.dir/bench_table3_leave_exps.cpp.o"
  "CMakeFiles/bench_table3_leave_exps.dir/bench_table3_leave_exps.cpp.o.d"
  "bench_table3_leave_exps"
  "bench_table3_leave_exps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_leave_exps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
