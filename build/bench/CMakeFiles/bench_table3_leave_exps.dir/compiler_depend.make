# Empty compiler generated dependencies file for bench_table3_leave_exps.
# This may be replaced when dependencies are built.
