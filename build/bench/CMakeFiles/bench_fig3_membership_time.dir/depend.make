# Empty dependencies file for bench_fig3_membership_time.
# This may be replaced when dependencies are built.
