file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rekey.dir/bench_ablation_rekey.cpp.o"
  "CMakeFiles/bench_ablation_rekey.dir/bench_ablation_rekey.cpp.o.d"
  "bench_ablation_rekey"
  "bench_ablation_rekey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rekey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
