# Empty dependencies file for bench_ablation_rekey.
# This may be replaced when dependencies are built.
