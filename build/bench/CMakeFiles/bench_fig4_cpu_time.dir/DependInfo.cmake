
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4_cpu_time.cpp" "bench/CMakeFiles/bench_fig4_cpu_time.dir/bench_fig4_cpu_time.cpp.o" "gcc" "bench/CMakeFiles/bench_fig4_cpu_time.dir/bench_fig4_cpu_time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/secure/CMakeFiles/ss_secure.dir/DependInfo.cmake"
  "/root/repo/build/src/flush/CMakeFiles/ss_flush.dir/DependInfo.cmake"
  "/root/repo/build/src/ckd/CMakeFiles/ss_ckd.dir/DependInfo.cmake"
  "/root/repo/build/src/cliques/CMakeFiles/ss_cliques.dir/DependInfo.cmake"
  "/root/repo/build/src/gcs/CMakeFiles/ss_gcs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ss_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ss_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
