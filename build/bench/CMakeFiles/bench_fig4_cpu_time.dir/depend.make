# Empty dependencies file for bench_fig4_cpu_time.
# This may be replaced when dependencies are built.
