file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cipher.dir/bench_ablation_cipher.cpp.o"
  "CMakeFiles/bench_ablation_cipher.dir/bench_ablation_cipher.cpp.o.d"
  "bench_ablation_cipher"
  "bench_ablation_cipher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cipher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
