file(REMOVE_RECURSE
  "CMakeFiles/command_post.dir/command_post.cpp.o"
  "CMakeFiles/command_post.dir/command_post.cpp.o.d"
  "command_post"
  "command_post.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/command_post.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
