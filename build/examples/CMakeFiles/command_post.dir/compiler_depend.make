# Empty compiler generated dependencies file for command_post.
# This may be replaced when dependencies are built.
