file(REMOVE_RECURSE
  "CMakeFiles/auction.dir/auction.cpp.o"
  "CMakeFiles/auction.dir/auction.cpp.o.d"
  "auction"
  "auction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
