file(REMOVE_RECURSE
  "CMakeFiles/ss_sim.dir/network.cpp.o"
  "CMakeFiles/ss_sim.dir/network.cpp.o.d"
  "CMakeFiles/ss_sim.dir/scheduler.cpp.o"
  "CMakeFiles/ss_sim.dir/scheduler.cpp.o.d"
  "libss_sim.a"
  "libss_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
