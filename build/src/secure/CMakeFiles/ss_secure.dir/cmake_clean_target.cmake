file(REMOVE_RECURSE
  "libss_secure.a"
)
