file(REMOVE_RECURSE
  "CMakeFiles/ss_secure.dir/cipher.cpp.o"
  "CMakeFiles/ss_secure.dir/cipher.cpp.o.d"
  "CMakeFiles/ss_secure.dir/ka_ckd.cpp.o"
  "CMakeFiles/ss_secure.dir/ka_ckd.cpp.o.d"
  "CMakeFiles/ss_secure.dir/ka_cliques.cpp.o"
  "CMakeFiles/ss_secure.dir/ka_cliques.cpp.o.d"
  "CMakeFiles/ss_secure.dir/secure_client.cpp.o"
  "CMakeFiles/ss_secure.dir/secure_client.cpp.o.d"
  "libss_secure.a"
  "libss_secure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_secure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
