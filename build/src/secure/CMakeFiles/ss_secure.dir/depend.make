# Empty dependencies file for ss_secure.
# This may be replaced when dependencies are built.
