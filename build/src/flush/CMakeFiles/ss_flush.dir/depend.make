# Empty dependencies file for ss_flush.
# This may be replaced when dependencies are built.
