file(REMOVE_RECURSE
  "libss_flush.a"
)
