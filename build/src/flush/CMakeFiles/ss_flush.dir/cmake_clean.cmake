file(REMOVE_RECURSE
  "CMakeFiles/ss_flush.dir/flush.cpp.o"
  "CMakeFiles/ss_flush.dir/flush.cpp.o.d"
  "libss_flush.a"
  "libss_flush.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_flush.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
