file(REMOVE_RECURSE
  "libss_ckd.a"
)
