file(REMOVE_RECURSE
  "CMakeFiles/ss_ckd.dir/ckd.cpp.o"
  "CMakeFiles/ss_ckd.dir/ckd.cpp.o.d"
  "libss_ckd.a"
  "libss_ckd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_ckd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
