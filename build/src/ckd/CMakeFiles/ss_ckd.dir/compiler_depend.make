# Empty compiler generated dependencies file for ss_ckd.
# This may be replaced when dependencies are built.
