file(REMOVE_RECURSE
  "CMakeFiles/ss_util.dir/bytes.cpp.o"
  "CMakeFiles/ss_util.dir/bytes.cpp.o.d"
  "CMakeFiles/ss_util.dir/log.cpp.o"
  "CMakeFiles/ss_util.dir/log.cpp.o.d"
  "CMakeFiles/ss_util.dir/rng.cpp.o"
  "CMakeFiles/ss_util.dir/rng.cpp.o.d"
  "CMakeFiles/ss_util.dir/serial.cpp.o"
  "CMakeFiles/ss_util.dir/serial.cpp.o.d"
  "libss_util.a"
  "libss_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
