file(REMOVE_RECURSE
  "CMakeFiles/ss_cliques.dir/clq.cpp.o"
  "CMakeFiles/ss_cliques.dir/clq.cpp.o.d"
  "CMakeFiles/ss_cliques.dir/key_directory.cpp.o"
  "CMakeFiles/ss_cliques.dir/key_directory.cpp.o.d"
  "libss_cliques.a"
  "libss_cliques.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_cliques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
