file(REMOVE_RECURSE
  "libss_cliques.a"
)
