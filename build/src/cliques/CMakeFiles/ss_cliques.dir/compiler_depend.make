# Empty compiler generated dependencies file for ss_cliques.
# This may be replaced when dependencies are built.
