
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/bignum.cpp" "src/crypto/CMakeFiles/ss_crypto.dir/bignum.cpp.o" "gcc" "src/crypto/CMakeFiles/ss_crypto.dir/bignum.cpp.o.d"
  "/root/repo/src/crypto/blowfish.cpp" "src/crypto/CMakeFiles/ss_crypto.dir/blowfish.cpp.o" "gcc" "src/crypto/CMakeFiles/ss_crypto.dir/blowfish.cpp.o.d"
  "/root/repo/src/crypto/dh.cpp" "src/crypto/CMakeFiles/ss_crypto.dir/dh.cpp.o" "gcc" "src/crypto/CMakeFiles/ss_crypto.dir/dh.cpp.o.d"
  "/root/repo/src/crypto/drbg.cpp" "src/crypto/CMakeFiles/ss_crypto.dir/drbg.cpp.o" "gcc" "src/crypto/CMakeFiles/ss_crypto.dir/drbg.cpp.o.d"
  "/root/repo/src/crypto/exp_counter.cpp" "src/crypto/CMakeFiles/ss_crypto.dir/exp_counter.cpp.o" "gcc" "src/crypto/CMakeFiles/ss_crypto.dir/exp_counter.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/crypto/CMakeFiles/ss_crypto.dir/hmac.cpp.o" "gcc" "src/crypto/CMakeFiles/ss_crypto.dir/hmac.cpp.o.d"
  "/root/repo/src/crypto/pi_spigot.cpp" "src/crypto/CMakeFiles/ss_crypto.dir/pi_spigot.cpp.o" "gcc" "src/crypto/CMakeFiles/ss_crypto.dir/pi_spigot.cpp.o.d"
  "/root/repo/src/crypto/schnorr.cpp" "src/crypto/CMakeFiles/ss_crypto.dir/schnorr.cpp.o" "gcc" "src/crypto/CMakeFiles/ss_crypto.dir/schnorr.cpp.o.d"
  "/root/repo/src/crypto/sha1.cpp" "src/crypto/CMakeFiles/ss_crypto.dir/sha1.cpp.o" "gcc" "src/crypto/CMakeFiles/ss_crypto.dir/sha1.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
