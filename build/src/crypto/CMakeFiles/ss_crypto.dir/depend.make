# Empty dependencies file for ss_crypto.
# This may be replaced when dependencies are built.
