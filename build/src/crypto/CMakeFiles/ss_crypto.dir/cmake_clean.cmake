file(REMOVE_RECURSE
  "CMakeFiles/ss_crypto.dir/bignum.cpp.o"
  "CMakeFiles/ss_crypto.dir/bignum.cpp.o.d"
  "CMakeFiles/ss_crypto.dir/blowfish.cpp.o"
  "CMakeFiles/ss_crypto.dir/blowfish.cpp.o.d"
  "CMakeFiles/ss_crypto.dir/dh.cpp.o"
  "CMakeFiles/ss_crypto.dir/dh.cpp.o.d"
  "CMakeFiles/ss_crypto.dir/drbg.cpp.o"
  "CMakeFiles/ss_crypto.dir/drbg.cpp.o.d"
  "CMakeFiles/ss_crypto.dir/exp_counter.cpp.o"
  "CMakeFiles/ss_crypto.dir/exp_counter.cpp.o.d"
  "CMakeFiles/ss_crypto.dir/hmac.cpp.o"
  "CMakeFiles/ss_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/ss_crypto.dir/pi_spigot.cpp.o"
  "CMakeFiles/ss_crypto.dir/pi_spigot.cpp.o.d"
  "CMakeFiles/ss_crypto.dir/schnorr.cpp.o"
  "CMakeFiles/ss_crypto.dir/schnorr.cpp.o.d"
  "CMakeFiles/ss_crypto.dir/sha1.cpp.o"
  "CMakeFiles/ss_crypto.dir/sha1.cpp.o.d"
  "libss_crypto.a"
  "libss_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
