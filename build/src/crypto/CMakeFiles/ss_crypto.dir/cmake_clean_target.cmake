file(REMOVE_RECURSE
  "libss_crypto.a"
)
