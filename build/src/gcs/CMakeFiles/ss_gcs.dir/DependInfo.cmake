
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gcs/daemon.cpp" "src/gcs/CMakeFiles/ss_gcs.dir/daemon.cpp.o" "gcc" "src/gcs/CMakeFiles/ss_gcs.dir/daemon.cpp.o.d"
  "/root/repo/src/gcs/daemon_delivery.cpp" "src/gcs/CMakeFiles/ss_gcs.dir/daemon_delivery.cpp.o" "gcc" "src/gcs/CMakeFiles/ss_gcs.dir/daemon_delivery.cpp.o.d"
  "/root/repo/src/gcs/daemon_key.cpp" "src/gcs/CMakeFiles/ss_gcs.dir/daemon_key.cpp.o" "gcc" "src/gcs/CMakeFiles/ss_gcs.dir/daemon_key.cpp.o.d"
  "/root/repo/src/gcs/daemon_membership.cpp" "src/gcs/CMakeFiles/ss_gcs.dir/daemon_membership.cpp.o" "gcc" "src/gcs/CMakeFiles/ss_gcs.dir/daemon_membership.cpp.o.d"
  "/root/repo/src/gcs/failure_detector.cpp" "src/gcs/CMakeFiles/ss_gcs.dir/failure_detector.cpp.o" "gcc" "src/gcs/CMakeFiles/ss_gcs.dir/failure_detector.cpp.o.d"
  "/root/repo/src/gcs/link.cpp" "src/gcs/CMakeFiles/ss_gcs.dir/link.cpp.o" "gcc" "src/gcs/CMakeFiles/ss_gcs.dir/link.cpp.o.d"
  "/root/repo/src/gcs/link_crypto.cpp" "src/gcs/CMakeFiles/ss_gcs.dir/link_crypto.cpp.o" "gcc" "src/gcs/CMakeFiles/ss_gcs.dir/link_crypto.cpp.o.d"
  "/root/repo/src/gcs/mailbox.cpp" "src/gcs/CMakeFiles/ss_gcs.dir/mailbox.cpp.o" "gcc" "src/gcs/CMakeFiles/ss_gcs.dir/mailbox.cpp.o.d"
  "/root/repo/src/gcs/spread_conf.cpp" "src/gcs/CMakeFiles/ss_gcs.dir/spread_conf.cpp.o" "gcc" "src/gcs/CMakeFiles/ss_gcs.dir/spread_conf.cpp.o.d"
  "/root/repo/src/gcs/types.cpp" "src/gcs/CMakeFiles/ss_gcs.dir/types.cpp.o" "gcc" "src/gcs/CMakeFiles/ss_gcs.dir/types.cpp.o.d"
  "/root/repo/src/gcs/wire.cpp" "src/gcs/CMakeFiles/ss_gcs.dir/wire.cpp.o" "gcc" "src/gcs/CMakeFiles/ss_gcs.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ss_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ss_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
