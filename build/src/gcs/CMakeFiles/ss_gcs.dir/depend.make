# Empty dependencies file for ss_gcs.
# This may be replaced when dependencies are built.
