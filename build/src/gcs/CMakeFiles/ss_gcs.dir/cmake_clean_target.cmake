file(REMOVE_RECURSE
  "libss_gcs.a"
)
