file(REMOVE_RECURSE
  "CMakeFiles/ss_gcs.dir/daemon.cpp.o"
  "CMakeFiles/ss_gcs.dir/daemon.cpp.o.d"
  "CMakeFiles/ss_gcs.dir/daemon_delivery.cpp.o"
  "CMakeFiles/ss_gcs.dir/daemon_delivery.cpp.o.d"
  "CMakeFiles/ss_gcs.dir/daemon_key.cpp.o"
  "CMakeFiles/ss_gcs.dir/daemon_key.cpp.o.d"
  "CMakeFiles/ss_gcs.dir/daemon_membership.cpp.o"
  "CMakeFiles/ss_gcs.dir/daemon_membership.cpp.o.d"
  "CMakeFiles/ss_gcs.dir/failure_detector.cpp.o"
  "CMakeFiles/ss_gcs.dir/failure_detector.cpp.o.d"
  "CMakeFiles/ss_gcs.dir/link.cpp.o"
  "CMakeFiles/ss_gcs.dir/link.cpp.o.d"
  "CMakeFiles/ss_gcs.dir/link_crypto.cpp.o"
  "CMakeFiles/ss_gcs.dir/link_crypto.cpp.o.d"
  "CMakeFiles/ss_gcs.dir/mailbox.cpp.o"
  "CMakeFiles/ss_gcs.dir/mailbox.cpp.o.d"
  "CMakeFiles/ss_gcs.dir/spread_conf.cpp.o"
  "CMakeFiles/ss_gcs.dir/spread_conf.cpp.o.d"
  "CMakeFiles/ss_gcs.dir/types.cpp.o"
  "CMakeFiles/ss_gcs.dir/types.cpp.o.d"
  "CMakeFiles/ss_gcs.dir/wire.cpp.o"
  "CMakeFiles/ss_gcs.dir/wire.cpp.o.d"
  "libss_gcs.a"
  "libss_gcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_gcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
