file(REMOVE_RECURSE
  "CMakeFiles/find_primes.dir/find_primes.cpp.o"
  "CMakeFiles/find_primes.dir/find_primes.cpp.o.d"
  "find_primes"
  "find_primes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/find_primes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
