# Empty dependencies file for find_primes.
# This may be replaced when dependencies are built.
