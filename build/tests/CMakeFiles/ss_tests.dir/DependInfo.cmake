
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bignum_test.cpp" "tests/CMakeFiles/ss_tests.dir/bignum_test.cpp.o" "gcc" "tests/CMakeFiles/ss_tests.dir/bignum_test.cpp.o.d"
  "/root/repo/tests/blowfish_test.cpp" "tests/CMakeFiles/ss_tests.dir/blowfish_test.cpp.o" "gcc" "tests/CMakeFiles/ss_tests.dir/blowfish_test.cpp.o.d"
  "/root/repo/tests/churn_test.cpp" "tests/CMakeFiles/ss_tests.dir/churn_test.cpp.o" "gcc" "tests/CMakeFiles/ss_tests.dir/churn_test.cpp.o.d"
  "/root/repo/tests/cipher_test.cpp" "tests/CMakeFiles/ss_tests.dir/cipher_test.cpp.o" "gcc" "tests/CMakeFiles/ss_tests.dir/cipher_test.cpp.o.d"
  "/root/repo/tests/ckd_test.cpp" "tests/CMakeFiles/ss_tests.dir/ckd_test.cpp.o" "gcc" "tests/CMakeFiles/ss_tests.dir/ckd_test.cpp.o.d"
  "/root/repo/tests/clq_test.cpp" "tests/CMakeFiles/ss_tests.dir/clq_test.cpp.o" "gcc" "tests/CMakeFiles/ss_tests.dir/clq_test.cpp.o.d"
  "/root/repo/tests/daemon_key_test.cpp" "tests/CMakeFiles/ss_tests.dir/daemon_key_test.cpp.o" "gcc" "tests/CMakeFiles/ss_tests.dir/daemon_key_test.cpp.o.d"
  "/root/repo/tests/drbg_dh_test.cpp" "tests/CMakeFiles/ss_tests.dir/drbg_dh_test.cpp.o" "gcc" "tests/CMakeFiles/ss_tests.dir/drbg_dh_test.cpp.o.d"
  "/root/repo/tests/flush_test.cpp" "tests/CMakeFiles/ss_tests.dir/flush_test.cpp.o" "gcc" "tests/CMakeFiles/ss_tests.dir/flush_test.cpp.o.d"
  "/root/repo/tests/fuzz_decode_test.cpp" "tests/CMakeFiles/ss_tests.dir/fuzz_decode_test.cpp.o" "gcc" "tests/CMakeFiles/ss_tests.dir/fuzz_decode_test.cpp.o.d"
  "/root/repo/tests/gcs_recovery_test.cpp" "tests/CMakeFiles/ss_tests.dir/gcs_recovery_test.cpp.o" "gcc" "tests/CMakeFiles/ss_tests.dir/gcs_recovery_test.cpp.o.d"
  "/root/repo/tests/gcs_test.cpp" "tests/CMakeFiles/ss_tests.dir/gcs_test.cpp.o" "gcc" "tests/CMakeFiles/ss_tests.dir/gcs_test.cpp.o.d"
  "/root/repo/tests/hash_test.cpp" "tests/CMakeFiles/ss_tests.dir/hash_test.cpp.o" "gcc" "tests/CMakeFiles/ss_tests.dir/hash_test.cpp.o.d"
  "/root/repo/tests/ka_module_test.cpp" "tests/CMakeFiles/ss_tests.dir/ka_module_test.cpp.o" "gcc" "tests/CMakeFiles/ss_tests.dir/ka_module_test.cpp.o.d"
  "/root/repo/tests/link_crypto_test.cpp" "tests/CMakeFiles/ss_tests.dir/link_crypto_test.cpp.o" "gcc" "tests/CMakeFiles/ss_tests.dir/link_crypto_test.cpp.o.d"
  "/root/repo/tests/link_test.cpp" "tests/CMakeFiles/ss_tests.dir/link_test.cpp.o" "gcc" "tests/CMakeFiles/ss_tests.dir/link_test.cpp.o.d"
  "/root/repo/tests/schnorr_auth_test.cpp" "tests/CMakeFiles/ss_tests.dir/schnorr_auth_test.cpp.o" "gcc" "tests/CMakeFiles/ss_tests.dir/schnorr_auth_test.cpp.o.d"
  "/root/repo/tests/secure_extra_test.cpp" "tests/CMakeFiles/ss_tests.dir/secure_extra_test.cpp.o" "gcc" "tests/CMakeFiles/ss_tests.dir/secure_extra_test.cpp.o.d"
  "/root/repo/tests/secure_test.cpp" "tests/CMakeFiles/ss_tests.dir/secure_test.cpp.o" "gcc" "tests/CMakeFiles/ss_tests.dir/secure_test.cpp.o.d"
  "/root/repo/tests/spread_conf_test.cpp" "tests/CMakeFiles/ss_tests.dir/spread_conf_test.cpp.o" "gcc" "tests/CMakeFiles/ss_tests.dir/spread_conf_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/ss_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/ss_tests.dir/util_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/ss_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/gcs/CMakeFiles/ss_gcs.dir/DependInfo.cmake"
  "/root/repo/build/src/flush/CMakeFiles/ss_flush.dir/DependInfo.cmake"
  "/root/repo/build/src/cliques/CMakeFiles/ss_cliques.dir/DependInfo.cmake"
  "/root/repo/build/src/ckd/CMakeFiles/ss_ckd.dir/DependInfo.cmake"
  "/root/repo/build/src/secure/CMakeFiles/ss_secure.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ss_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
