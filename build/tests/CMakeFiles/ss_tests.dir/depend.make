# Empty dependencies file for ss_tests.
# This may be replaced when dependencies are built.
